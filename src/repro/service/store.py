"""Append-only on-disk archive store with warm-started loads.

The analyses so far rebuilt every :class:`~repro.providers.base.ListArchive`
from CSV (or a fresh simulation) per process, then re-derived 30 days of
base-domain deltas before the first query could be answered.  The store
makes both persistent:

* **Compact binary shards.**  Snapshots are appended to one shard file
  per ``(provider, month)``.  Within a shard every domain name is stored
  exactly once in a shared string table; a day's list is a rank-ordered
  array of table ids.  Daily lists overlap by ~99% (the paper's central
  stability finding), so after the first day a snapshot costs roughly its
  churn, not its length.  Each table entry also records the domain's
  *base domain* (normalised through the default PSL at append time), so
  a reload can rebuild the per-day base-domain sets by integer refcount
  replay — no PSL parsing at all.
* **Warm starts.**  :meth:`ArchiveStore.load_archive` rebuilds the
  archive and seeds the :mod:`repro.core.cache` delta engine
  (:func:`~repro.core.cache.seed_base_domain_sets`) with the replayed
  per-day sets, so a restarted service answers its first
  intersection/structure query without recomputing a month of deltas.
  Seeding is skipped (never wrong, just cold) when the default PSL has
  changed since append time.
* **Reports.**  Byte-reproducible :class:`~repro.scenarios.runner.ScenarioReport`
  JSON documents are stored alongside the shards, so the query API serves
  them as static bytes instead of re-running scenarios per request.

Appends are strictly chronological per provider (an append-only log);
``store.version`` increments on every mutation and is the cache/ETag
token of the query layer.
"""

from __future__ import annotations

import datetime as dt
import json
import os
import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional

from repro.core.cache import base_domain_mapper, seed_base_domain_sets
from repro.domain.psl import default_list
from repro.providers.base import ListArchive, ListSnapshot

#: Per-record magic; bump the digit on incompatible format changes.
_MAGIC = b"RLS1"
_HEADER = struct.Struct("<4sIIIII")  # magic, date ordinal, psl version,
#                                      n_new, n_entries, payload bytes
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Base-reference tags in the new-domain block (see :func:`_encode_record`).
_BASE_IS_NAME = 0      # base == name; name joins the base table
_BASE_INLINE = 1       # new base string follows inline
_BASE_REF_OFFSET = 2   # tag - 2 indexes an existing base-table entry

FORMAT_VERSION = 1


class StoreError(RuntimeError):
    """Raised on malformed store contents or invalid append sequences."""


def _month_key(date: dt.date) -> str:
    return f"{date.year:04d}-{date.month:02d}"


class _ShardTables:
    """The replayable per-shard state: string tables and record count."""

    __slots__ = ("names", "name_index", "name_base", "bases", "base_index",
                 "records", "last_ordinal", "consumed_bytes")

    def __init__(self) -> None:
        self.names: list[str] = []
        self.name_index: dict[str, int] = {}
        self.name_base: list[int] = []      # name id -> base-table id
        self.bases: list[str] = []
        self.base_index: dict[str, int] = {}
        self.records = 0
        self.last_ordinal = 0
        self.consumed_bytes = 0             # file offset after the last record

    def intern_base(self, base: str) -> int:
        base_id = self.base_index.get(base)
        if base_id is None:
            base_id = len(self.bases)
            self.bases.append(base)
            self.base_index[base] = base_id
        return base_id


def _encode_record(tables: _ShardTables, snapshot: ListSnapshot,
                   base_of, psl_version: int) -> bytes:
    """Append ``snapshot`` to ``tables`` and return its wire record."""
    new_block = bytearray()
    entry_ids = []
    n_new = 0
    for name in snapshot.entries:
        name_id = tables.name_index.get(name)
        if name_id is None:
            name_id = len(tables.names)
            tables.names.append(name)
            tables.name_index[name] = name_id
            base = base_of(name)
            raw = name.encode("utf-8")
            new_block += _U16.pack(len(raw)) + raw
            base_id = tables.base_index.get(base)
            if base_id is not None:
                new_block += _U32.pack(_BASE_REF_OFFSET + base_id)
            elif base == name:
                base_id = tables.intern_base(base)
                new_block += _U32.pack(_BASE_IS_NAME)
            else:
                base_id = tables.intern_base(base)
                raw_base = base.encode("utf-8")
                new_block += _U32.pack(_BASE_INLINE)
                new_block += _U16.pack(len(raw_base)) + raw_base
            tables.name_base.append(base_id)
            n_new += 1
        entry_ids.append(name_id)
    body = bytes(new_block) + struct.pack(f"<{len(entry_ids)}I", *entry_ids)
    payload = zlib.compress(body, 6)
    tables.records += 1
    tables.last_ordinal = snapshot.date.toordinal()
    return _HEADER.pack(_MAGIC, snapshot.date.toordinal(), psl_version,
                        n_new, len(entry_ids), len(payload)) + payload


def _decode_records(data: bytes, tables: _ShardTables, path: Path,
                    limit: Optional[int] = None
                    ) -> Iterator[tuple[int, int, list[int]]]:
    """Replay shard bytes, yielding ``(ordinal, psl_version, entry_ids)``.

    ``tables`` is mutated in step, so a caller may stop early and keep a
    prefix state (used by the lazy single-snapshot load).  ``limit``
    bounds the replay to the manifest's record count: bytes past it are
    an orphaned tail from an append that crashed before its manifest
    flush, and must not resurrect as data.
    """
    offset = 0
    total = len(data)
    while offset < total and (limit is None or tables.records < limit):
        if offset + _HEADER.size > total:
            raise StoreError(f"{path}: truncated record header at byte {offset}")
        magic, ordinal, psl_version, n_new, n_entries, payload_len = \
            _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            raise StoreError(f"{path}: bad record magic at byte {offset}")
        offset += _HEADER.size
        if offset + payload_len > total:
            raise StoreError(f"{path}: truncated record payload at byte {offset}")
        body = zlib.decompress(data[offset:offset + payload_len])
        offset += payload_len
        cursor = 0
        for _ in range(n_new):
            (name_len,) = _U16.unpack_from(body, cursor)
            cursor += _U16.size
            name = body[cursor:cursor + name_len].decode("utf-8")
            cursor += name_len
            (tag,) = _U32.unpack_from(body, cursor)
            cursor += _U32.size
            if tag == _BASE_IS_NAME:
                base_id = tables.intern_base(name)
            elif tag == _BASE_INLINE:
                (base_len,) = _U16.unpack_from(body, cursor)
                cursor += _U16.size
                base = body[cursor:cursor + base_len].decode("utf-8")
                cursor += base_len
                base_id = tables.intern_base(base)
            else:
                base_id = tag - _BASE_REF_OFFSET
                if base_id >= len(tables.bases):
                    raise StoreError(f"{path}: dangling base reference {base_id}")
            tables.name_index[name] = len(tables.names)
            tables.names.append(name)
            tables.name_base.append(base_id)
        entry_ids = list(struct.unpack_from(f"<{n_entries}I", body, cursor))
        tables.records += 1
        tables.last_ordinal = ordinal
        tables.consumed_bytes = offset
        yield ordinal, psl_version, entry_ids


class ArchiveStore:
    """Durable, append-only archive storage under one root directory.

    Layout::

        root/
          manifest.json                  # version, per-provider date log
          shards/<provider>/<YYYY-MM>.rls
          reports/<profile>.json         # stored ScenarioReport documents
    """

    def __init__(self, root: str | Path, create: bool = True) -> None:
        self.root = Path(root)
        self._manifest_path = self.root / "manifest.json"
        self._tables: dict[tuple[str, str], _ShardTables] = {}
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            if manifest.get("format_version") != FORMAT_VERSION:
                raise StoreError(
                    f"{self._manifest_path}: unsupported store format "
                    f"{manifest.get('format_version')!r} (expected {FORMAT_VERSION})")
            self._manifest = manifest
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            self._manifest = {"format_version": FORMAT_VERSION,
                              "store_version": 0, "data_version": 0,
                              "providers": {}, "reports": []}
            self._write_manifest()
        else:
            raise StoreError(f"no archive store at {self.root}")

    # -- manifest ---------------------------------------------------------
    def _write_manifest(self) -> None:
        text = json.dumps(self._manifest, indent=2, sort_keys=True) + "\n"
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self._manifest_path)

    @property
    def version(self) -> int:
        """Monotonic store version; bumps on every mutation.  ETag token."""
        return self._manifest["store_version"]

    @property
    def data_version(self) -> int:
        """Version of the snapshot data only (report saves don't bump it).

        The query layer keys its materialised archives/index on this, so
        storing a report does not force an archive reload.
        """
        return self._manifest.get("data_version", self._manifest["store_version"])

    def providers(self) -> tuple[str, ...]:
        """Stored provider names, sorted."""
        return tuple(sorted(self._manifest["providers"]))

    def dates(self, provider: str) -> list[dt.date]:
        """Stored snapshot dates of ``provider``, in append (= date) order."""
        entry = self._manifest["providers"].get(provider)
        if entry is None:
            return []
        return [dt.date.fromordinal(o) for o in entry["dates"]]

    def __len__(self) -> int:
        return sum(len(p["dates"]) for p in self._manifest["providers"].values())

    # -- shard plumbing ---------------------------------------------------
    def _shard_path(self, provider: str, month: str) -> Path:
        return self.root / "shards" / provider / f"{month}.rls"

    def _shard_records(self, provider: str, month: str) -> int:
        """The manifest's record count for a shard (the durable truth)."""
        entry = self._manifest["providers"].get(provider)
        return entry["shards"].get(month, 0) if entry else 0

    def _shard_tables(self, provider: str, month: str) -> _ShardTables:
        """The shard's replayed string tables (cached per open store).

        Replay stops at the manifest's record count; a longer file holds
        an orphaned tail from an append that crashed before its manifest
        flush, which the next append truncates away (re-appending that
        day is then valid again instead of a silent duplicate).
        """
        key = (provider, month)
        tables = self._tables.get(key)
        if tables is None:
            tables = _ShardTables()
            path = self._shard_path(provider, month)
            if path.exists():
                data = path.read_bytes()
                for _ in _decode_records(data, tables, path,
                                         limit=self._shard_records(provider, month)):
                    pass
                if tables.consumed_bytes < len(data):
                    with path.open("r+b") as handle:
                        handle.truncate(tables.consumed_bytes)
            self._tables[key] = tables
        return tables

    def _months(self, provider: str) -> list[str]:
        entry = self._manifest["providers"].get(provider)
        return sorted(entry["shards"]) if entry else []

    # -- appends ----------------------------------------------------------
    def append(self, snapshot: ListSnapshot, sync: bool = True) -> None:
        """Append one snapshot (strictly after the provider's last date).

        The record hits the shard file immediately; with ``sync`` (the
        default) the manifest is rewritten too.  Batch callers may pass
        ``sync=False`` and :meth:`flush` once.
        """
        provider = snapshot.provider
        if (not provider or "/" in provider or "\\" in provider
                or provider.startswith(".")):
            # Provider names become shard path components; reject anything
            # that could escape the store root.
            raise StoreError(f"invalid provider name {provider!r}")
        entry = self._manifest["providers"].setdefault(
            provider, {"dates": [], "shards": {}})
        ordinal = snapshot.date.toordinal()
        if entry["dates"] and ordinal <= entry["dates"][-1]:
            last = dt.date.fromordinal(entry["dates"][-1])
            raise StoreError(
                f"append-only: {provider} snapshot {snapshot.date} is not after "
                f"the stored {last}")
        month = _month_key(snapshot.date)
        tables = self._shard_tables(provider, month)
        psl = default_list()
        record = _encode_record(tables, snapshot, base_domain_mapper(psl),
                                psl.version)
        path = self._shard_path(provider, month)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("ab") as handle:
            handle.write(record)
        tables.consumed_bytes += len(record)
        entry["dates"].append(ordinal)
        entry["shards"][month] = tables.records
        self._manifest["store_version"] += 1
        self._manifest["data_version"] = self._manifest.get("data_version", 0) + 1
        if sync:
            self._write_manifest()

    def append_archive(self, archive: ListArchive) -> None:
        """Append every snapshot of ``archive`` (one manifest write)."""
        for snapshot in archive:
            self.append(snapshot, sync=False)
        self.flush()

    def flush(self) -> None:
        """Persist the manifest (no-op for data records, written on append)."""
        self._write_manifest()

    # -- loads ------------------------------------------------------------
    def _replay(self, provider: str
                ) -> Iterator[tuple[dt.date, int, tuple[str, ...], list[str]]]:
        """Yield ``(date, psl_version, entries, entry_bases)`` per stored day."""
        for month in self._months(provider):
            path = self._shard_path(provider, month)
            if not path.exists():
                raise StoreError(f"manifest names missing shard {path}")
            expected = self._shard_records(provider, month)
            tables = _ShardTables()
            for ordinal, psl_version, entry_ids in _decode_records(
                    path.read_bytes(), tables, path, limit=expected):
                names = tables.names
                name_base = tables.name_base
                bases = tables.bases
                entries = tuple(names[i] for i in entry_ids)
                entry_bases = [bases[name_base[i]] for i in entry_ids]
                yield dt.date.fromordinal(ordinal), psl_version, entries, entry_bases
            if tables.records < expected:
                raise StoreError(
                    f"{path}: holds {tables.records} records, manifest expects "
                    f"{expected}")

    def iter_snapshots(self, provider: str) -> Iterator[ListSnapshot]:
        """Stream the provider's snapshots in date order (lazy, low memory)."""
        for date, _, entries, _ in self._replay(provider):
            yield ListSnapshot(provider=provider, date=date, entries=entries)

    def load_snapshot(self, provider: str, date: dt.date) -> ListSnapshot:
        """Load one snapshot, reading only its month shard."""
        month = _month_key(date)
        path = self._shard_path(provider, month)
        if month not in self._months(provider) or not path.exists():
            raise KeyError(f"{provider} has no stored snapshot for {date}")
        target = date.toordinal()
        tables = _ShardTables()
        for ordinal, _, entry_ids in _decode_records(
                path.read_bytes(), tables, path,
                limit=self._shard_records(provider, month)):
            if ordinal == target:
                entries = tuple(tables.names[i] for i in entry_ids)
                return ListSnapshot(provider=provider, date=date, entries=entries)
        raise KeyError(f"{provider} has no stored snapshot for {date}")

    def load_archive(self, provider: str, warm: bool = True) -> ListArchive:
        """Rebuild the provider's full archive.

        With ``warm`` (the default) the per-day base-domain sets are
        replayed from the stored base ids — a pure integer refcount pass —
        and seeded into the archive's :mod:`repro.core.cache` entry, so
        the delta engine starts hot.  Seeding is skipped when the default
        PSL version no longer matches the one recorded at append time
        (the stored bases would be stale); the archive itself is always
        exact.
        """
        if provider not in self._manifest["providers"]:
            raise KeyError(f"no archive stored for provider {provider!r}")
        psl = default_list()
        snapshots: list[ListSnapshot] = []
        per_day: dict[dt.date, frozenset[str]] = {}
        counts: dict[str, int] = {}
        prev_entries: Optional[frozenset[str]] = None
        prev_bases: dict[str, str] = {}
        prev_frozen: frozenset[str] = frozenset()
        warmable = warm
        for date, psl_version, entries, entry_bases in self._replay(provider):
            snapshot = ListSnapshot(provider=provider, date=date, entries=entries)
            snapshots.append(snapshot)
            if not warmable:
                continue
            if psl_version != psl.version:
                warmable = False
                continue
            current = snapshot.domain_set()
            base_by_name = dict(zip(entries, entry_bases))
            if prev_entries is None:
                for base in entry_bases:
                    counts[base] = counts.get(base, 0) + 1
                frozen = frozenset(counts)
            else:
                removed = prev_entries - current
                added = current - prev_entries
                if removed or added:
                    for name in removed:
                        base = prev_bases[name]
                        remaining = counts[base] - 1
                        if remaining:
                            counts[base] = remaining
                        else:
                            del counts[base]
                    for name in added:
                        base = base_by_name[name]
                        counts[base] = counts.get(base, 0) + 1
                    frozen = frozenset(counts)
                else:
                    frozen = prev_frozen
            per_day[date] = frozen
            prev_entries = current
            prev_bases = base_by_name
            prev_frozen = frozen
        archive = ListArchive.from_snapshots(snapshots, provider=provider)
        if warmable and len(per_day) == len(snapshots):
            seed_base_domain_sets(archive, per_day, psl=psl)
        return archive

    def load_archives(self, providers: Optional[Iterable[str]] = None,
                      warm: bool = True) -> dict[str, ListArchive]:
        """Load several providers' archives (default: all stored)."""
        names = tuple(providers) if providers is not None else self.providers()
        return {name: self.load_archive(name, warm=warm) for name in names}

    # -- scenario reports -------------------------------------------------
    def _report_path(self, profile: str) -> Path:
        if not profile or "/" in profile or "\\" in profile or profile.startswith("."):
            raise StoreError(f"invalid profile name {profile!r}")
        return self.root / "reports" / f"{profile}.json"

    def report_names(self) -> tuple[str, ...]:
        """Names of stored scenario reports, sorted."""
        return tuple(sorted(self._manifest["reports"]))

    def save_report(self, report) -> Path:
        """Store a :class:`~repro.scenarios.runner.ScenarioReport` document.

        The exact ``to_json()`` bytes are persisted, so serving the file
        is byte-identical to re-running the scenario.
        """
        path = self._report_path(report.profile)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json(), encoding="utf-8")
        if report.profile not in self._manifest["reports"]:
            self._manifest["reports"].append(report.profile)
            self._manifest["reports"].sort()
        self._manifest["store_version"] += 1
        self._write_manifest()
        return path

    def load_report_bytes(self, profile: str) -> bytes:
        """The stored report document, as served bytes."""
        path = self._report_path(profile)
        if profile not in self._manifest["reports"] or not path.exists():
            raise KeyError(f"no stored report for profile {profile!r}")
        return path.read_bytes()

    # -- convenience ------------------------------------------------------
    @classmethod
    def from_archives(cls, root: str | Path,
                      archives: Mapping[str, ListArchive]) -> "ArchiveStore":
        """Create a store at ``root`` holding ``archives`` (keyed by name)."""
        store = cls(root)
        for name in sorted(archives):
            store.append_archive(archives[name])
        return store
