"""Append-only on-disk archive store sharing the process interner.

The analyses so far rebuilt every :class:`~repro.providers.base.ListArchive`
from CSV (or a fresh simulation) per process, then re-derived 30 days of
base-domain deltas before the first query could be answered.  The store
makes both persistent — and since the columnar refactor its on-disk id
space *is* the shared :class:`~repro.interning.DomainInterner`'s, not a
private per-shard string table:

* **One persisted domain table.**  ``interner.tbl`` holds every distinct
  domain (and its base domain, normalised through the default PSL at
  append time) exactly once, store-wide.  A day's list is a shard record
  holding a rank-ordered array of table ids — daily lists overlap by
  ~99% (the paper's central stability finding), so after the first day a
  snapshot costs four bytes per entry, not its strings.
* **Chunked records (format v3).**  A day's id column is split into
  fixed-size rank-range chunks (:data:`CHUNK_ENTRIES`), each compressed
  independently behind a per-record chunk directory.  Whole-day loads
  inflate chunk by chunk straight into the id column;
  :meth:`ArchiveStore.load_head` and :meth:`ArchiveStore.rank_of_id`
  inflate *only* the chunks a head or point query touches — on a
  1M-entry day a ``top(1000)`` costs one chunk, not four megabytes.
  v2 stores (one whole-day payload per record) stay readable; their
  records surface as single-chunk days.
* **Columnar loads.**  Opening a store interns the table once into the
  process :func:`~repro.interning.default_interner` (building a table-id
  → process-id translation) and, when the PSL version still matches the
  append-time stamp, seeds the interner's base-id column from the stored
  bases.  Every snapshot then loads as a pure id column
  (:meth:`~repro.providers.base.ListSnapshot.from_ids`): **no domain
  string is materialised per day**, and
  :meth:`ArchiveStore.load_archive` warm-starts the
  :mod:`repro.core.cache` delta engine by integer refcount replay
  (:func:`~repro.core.cache.seed_base_id_sets`).  Seeding is skipped
  (never wrong, just cold) when the default PSL has changed since
  append time.
* **Reports.**  Byte-reproducible :class:`~repro.scenarios.runner.ScenarioReport`
  JSON documents are stored alongside the shards, so the query API serves
  them as static bytes instead of re-running scenarios per request.

Appends are strictly chronological per provider (an append-only log);
``store.version`` increments on every mutation and is the cache/ETag
token of the query layer.  The manifest is the durable truth: table or
shard bytes past the manifest's counts are an orphaned tail from an
append that crashed before its manifest flush, and are truncated away on
the next open.

**Live appends.**  The store is safe to append to while readers are
active in the same process.  Writers serialise on one lock; the table
and shard tails are written (and, for synced appends, fsynced) *before*
the manifest flips, and the in-memory manifest is copy-on-write: an
append builds a fresh manifest dict and publishes it with a single
reference swap, so a reader never observes ``store.version`` bumped
ahead of the date log it describes.  Readers that walk several manifest
fields (``load_archive``, ``iter_snapshots``) capture one manifest
reference up front and answer entirely from that consistent snapshot,
even if appends land mid-iteration.
"""

from __future__ import annotations

import datetime as dt
import json
import mmap
import os
import struct
import sys
import threading
import time
import zlib
from array import array
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional

from repro import faults
from repro.core.cache import seed_base_id_sets
from repro.obs import logging as obslog
from repro.obs import metrics
from repro.domain.psl import default_list
from repro.interning import default_interner
from repro.providers.base import ListArchive, ListSnapshot

#: Per-record magic; bump the digit on incompatible format changes.
#: v3 records are *chunked*: the header is followed by a chunk directory
#: (``n_chunks`` × ``(entry_count, compressed_len)``) and then the
#: independently-compressed chunk payloads, so readers decompress only
#: the rank ranges a query touches.  v2 records (one whole-day payload)
#: remain readable; the per-record magic tells them apart, so a shard
#: may mix both after an old store is appended to.
_MAGIC = b"RLS3"
_MAGIC_V2 = b"RLS2"
_HEADER = struct.Struct("<4sIIII")  # magic, date ordinal, psl version,
#                                     n_entries, n_chunks (v2: payload bytes)
_CHUNK_DIR = struct.Struct("<II")   # entry count, compressed bytes
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Entries per rank-range chunk.  Read at append time (not baked into
#: the file format — readers trust each record's chunk directory), so
#: tests may patch it small to exercise many-chunk records with tiny
#: lists.  16k entries ≈ 64 KiB raw per chunk: large enough that zlib
#: compresses well, small enough that a ``top(1000)`` or point query on
#: a 1M-entry day decompresses ~1/64th of it.
CHUNK_ENTRIES = 16_384

FORMAT_VERSION = 3
#: Manifest format versions this reader accepts.  v2 stores open as-is
#: (their records carry the v2 magic); the first append rewrites the
#: manifest as v3.
SUPPORTED_FORMATS = frozenset({2, FORMAT_VERSION})


class StoreError(RuntimeError):
    """Raised on malformed store contents or invalid append sequences."""


class StoreConflictError(StoreError):
    """An append that conflicts with already-published days.

    Distinguished from plain :class:`StoreError` so API layers can map
    out-of-order/duplicate days to 409 Conflict without matching on the
    error message.
    """


# Store spans are ms-scale (an append fsyncs, a load walks shards), so
# registry instruments are affordable on them; per-chunk decompression
# is hotter and keeps plain-int tallies on the store instead (exposed
# at scrape time by QueryService._metrics_families).
_M_APPENDS = metrics.counter(
    "repro_store_appends_total", "Snapshot days appended to the store.")
_M_APPEND_SECONDS = metrics.histogram(
    "repro_store_append_seconds",
    "Wall-clock seconds per store append (lock wait included).")
_M_ARCHIVE_LOADS = metrics.counter(
    "repro_store_archive_loads_total", "Full archive rebuilds from shards.")
_M_ARCHIVE_LOAD_SECONDS = metrics.histogram(
    "repro_store_load_archive_seconds",
    "Wall-clock seconds per full archive rebuild.")


def _month_key(date: dt.date) -> str:
    return f"{date.year:04d}-{date.month:02d}"


class _TableState:
    """The store's domain table, translated into the process id space."""

    __slots__ = ("gids", "base_gids", "consumed_bytes", "_sid_by_gid")

    def __init__(self) -> None:
        self.gids = array("I")        # store id -> process (interner) id
        self.base_gids = array("I")   # store id -> process id of its base
        self.consumed_bytes = 0
        self._sid_by_gid: Optional[dict[int, int]] = None

    def __len__(self) -> int:
        return len(self.gids)

    def sid_by_gid(self) -> dict[int, int]:
        """Process-id → store-id index (built on first append, int-keyed)."""
        index = self._sid_by_gid
        if index is None:
            index = {gid: sid for sid, gid in enumerate(self.gids)}
            self._sid_by_gid = index
        return index

    def append(self, gid: int, base_gid: int) -> int:
        sid = len(self.gids)
        self.gids.append(gid)
        self.base_gids.append(base_gid)
        if self._sid_by_gid is not None:
            self._sid_by_gid[gid] = sid
        return sid


def _decode_table(data: bytes, limit: int, path: Path,
                  state: Optional[_TableState] = None,
                  base_offset: int = 0) -> _TableState:
    """Replay table records into the process interner until ``limit``.

    The one place a store load touches domain strings: each distinct
    name is decoded and interned exactly once per open, after which
    every snapshot and base lookup is id arithmetic.

    Passing an existing ``state`` (with ``data`` starting at its
    ``consumed_bytes`` = ``base_offset``) *continues* a previous decode:
    the incremental path a read-only worker uses when another process
    published new table entries — only the tail bytes are read and
    interned, never the whole table again.
    """
    interner = default_interner()
    if state is None:
        state = _TableState()
    offset = 0
    total = len(data)
    while len(state.gids) < limit:
        if offset + _U16.size > total:
            raise StoreError(
                f"{path}: truncated table record at byte {base_offset + offset}")
        (name_len,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        if offset + name_len + _U32.size > total:
            raise StoreError(
                f"{path}: truncated table record at byte {base_offset + offset}")
        name = data[offset:offset + name_len].decode("utf-8")
        offset += name_len
        (base_sid,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        sid = len(state.gids)
        if base_sid > sid:
            raise StoreError(f"{path}: dangling base reference {base_sid} at entry {sid}")
        gid = interner.intern(name)
        base_gid = gid if base_sid == sid else state.gids[base_sid]
        state.append(gid, base_gid)
        state.consumed_bytes = base_offset + offset
    return state


def _encode_table_entry(name: str, base_sid: int) -> bytes:
    raw = name.encode("utf-8")
    return _U16.pack(len(raw)) + raw + _U32.pack(base_sid)


def _pack_ids(ids: array) -> bytes:
    """Little-endian bytes of a uint32 id array (the on-disk layout)."""
    if sys.byteorder != "little":
        ids = array("I", ids)
        ids.byteswap()
    return ids.tobytes()


def _unpack_ids(raw: bytes) -> array:
    """Decode little-endian uint32 bytes into an id array (no boxing)."""
    ids = array("I")
    ids.frombytes(raw)
    if sys.byteorder != "little":
        ids.byteswap()
    return ids


#: One record's payload as ``[(entry_count, compressed_bytes), ...]`` —
#: still compressed, so consumers inflate only the chunks they touch.
_Chunks = list[tuple[int, memoryview]]


def _decode_chunks(chunks: _Chunks) -> array:
    """Inflate every chunk of a record into one store-id column."""
    ids = array("I")
    for _count, raw in chunks:
        ids += _unpack_ids(zlib.decompress(raw))
    return ids


def _shard_view(path: Path) -> "bytes | memoryview":
    """A month shard's bytes as a lazily-paged read-only view.

    Queries against a 1M-entry month must not start by copying the whole
    ~80 MB shard onto the heap just to walk its record headers, so the
    file is memory-mapped: the header/directory walk touches only its
    own pages, and a chunk's bytes are faulted in when the chunk is
    actually inflated.  Chunk views returned to callers keep the mapping
    alive; it unmaps when the last view is dropped.  Empty (or
    otherwise unmappable) files fall back to a plain read.
    """
    with path.open("rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            return handle.read()
    return memoryview(mapped)


def _iter_shard_records(data: "bytes | memoryview", path: Path, limit: int,
                        decode_payload: bool = True
                        ) -> Iterator[tuple[int, int, Optional[_Chunks], int]]:
    """Yield ``(ordinal, psl_version, chunks, end_offset)`` per record.

    ``chunks`` is the record's still-compressed chunk list (a v2 record
    surfaces as a single whole-day chunk) — decompression is the
    caller's choice, per chunk, so point and head queries inflate only
    the rank ranges they touch.  ``limit`` bounds the walk to the
    manifest's record count (bytes past it are an orphaned tail); with
    ``decode_payload=False`` the payload is skipped entirely (the
    truncation scan of the append path).
    """
    offset = 0
    total = len(data)
    view = memoryview(data)
    records = 0
    while offset < total and records < limit:
        if offset + _HEADER.size > total:
            raise StoreError(f"{path}: truncated record header at byte {offset}")
        magic, ordinal, psl_version, n_entries, tail_field = \
            _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        chunks: Optional[_Chunks] = None
        if magic == _MAGIC:
            n_chunks = tail_field
            dir_size = n_chunks * _CHUNK_DIR.size
            if offset + dir_size > total:
                raise StoreError(
                    f"{path}: truncated chunk directory at byte {offset}")
            directory = [_CHUNK_DIR.unpack_from(data, offset + i * _CHUNK_DIR.size)
                         for i in range(n_chunks)]
            offset += dir_size
            if sum(count for count, _ in directory) != n_entries:
                raise StoreError(
                    f"{path}: chunk directory counts disagree with record "
                    f"header at byte {offset}")
            payload_len = sum(length for _, length in directory)
            if offset + payload_len > total:
                raise StoreError(
                    f"{path}: truncated record payload at byte {offset}")
            if decode_payload:
                chunks = []
                at = offset
                for count, length in directory:
                    chunks.append((count, view[at:at + length]))
                    at += length
            offset += payload_len
        elif magic == _MAGIC_V2:
            payload_len = tail_field
            if offset + payload_len > total:
                raise StoreError(
                    f"{path}: truncated record payload at byte {offset}")
            if decode_payload:
                chunks = [(n_entries, view[offset:offset + payload_len])]
            offset += payload_len
        else:
            raise StoreError(f"{path}: bad record magic at byte {offset - _HEADER.size}")
        records += 1
        yield ordinal, psl_version, chunks, offset


class ArchiveStore:
    """Durable, append-only archive storage under one root directory.

    Layout::

        root/
          manifest.json                  # version, per-provider date log
          interner.tbl                   # the persisted shared domain table
          shards/<provider>/<YYYY-MM>.rls
          reports/<profile>.json         # stored ScenarioReport documents
    """

    def __init__(self, root: str | Path, create: bool = True,
                 read_only: bool = False) -> None:
        #: A read-only store never mutates the directory — not even the
        #: recovery truncations a writable open performs.  This is what
        #: makes multi-process serving safe: a pre-fork read worker that
        #: opens the store while the writer has an append in flight must
        #: treat bytes past the manifest's counts as *someone else's
        #: in-progress tail*, not as an orphan to truncate away.
        self.read_only = bool(read_only)
        self.root = Path(root)
        self._manifest_path = self.root / "manifest.json"
        self._table_path = self.root / "interner.tbl"
        self._table_state: Optional[_TableState] = None
        self._shard_offsets: dict[tuple[str, str], int] = {}
        # Serialises mutations (and the lazy table load, which may
        # truncate an orphaned tail) against concurrent appenders.
        self._write_lock = threading.RLock()
        # Files appended (and directories created) with sync=False since
        # the last durable manifest; the next durable write fsyncs them
        # before the manifest may name their records.
        self._dirty_files: set[Path] = set()
        self._dirty_dirs: set[Path] = set()
        #: Whether the in-memory manifest is ahead of the durable one
        #: (batched ``sync=False`` appends); ``close()`` flushes iff set.
        self._manifest_dirty = False
        #: Chunk-decompression tallies.  Plain GIL-atomic ints (the
        #: per-chunk path is too hot for the metrics-registry lock);
        #: scraped via /v1/metrics and reported by /v1/health.
        self.chunks_inflated = 0
        self.chunk_bytes_inflated = 0
        stale_tmp = self._manifest_path.with_suffix(".json.tmp")
        if stale_tmp.exists() and not self.read_only:
            # A crash mid-publish leaves a (possibly truncated) tmp
            # manifest; the real manifest is intact, the tmp is garbage.
            # A read-only opener must leave it alone — a live writer may
            # be between its tmp write and the atomic rename right now.
            stale_tmp.unlink()
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            if manifest.get("format_version") not in SUPPORTED_FORMATS:
                raise StoreError(
                    f"{self._manifest_path}: unsupported store format "
                    f"{manifest.get('format_version')!r} "
                    f"(expected one of {sorted(SUPPORTED_FORMATS)})")
            if "log" not in manifest:
                manifest = self._synthesise_log(manifest)
            self._manifest = manifest
        elif create and not self.read_only:
            self.root.mkdir(parents=True, exist_ok=True)
            self._manifest = {"format_version": FORMAT_VERSION,
                              "store_version": 0, "data_version": 0,
                              "providers": {}, "reports": [], "log": [],
                              "interner": {"entries": 0, "psl_version": None}}
            self._write_manifest()
        else:
            raise StoreError(f"no archive store at {self.root}")

    @staticmethod
    def _synthesise_log(manifest: dict) -> dict:
        """Derive a mutation log for a pre-log store (one-time migration).

        The log is the replication truth: entry ``i`` is the mutation
        that produced store version ``i + 1``.  Stores written before
        the log existed cannot recover their historical global append
        order (the manifest only keeps per-provider date lists), so the
        migration assigns the canonical order — appends merged by
        ``(date, provider)``, then reports by name — and re-anchors
        ``store_version``/``data_version`` to match.  Versions are an
        internal cache/replication token, never persisted outside the
        store, so re-anchoring is safe; it happens in memory and lands
        on disk with the next durable write.  Deterministic, so a
        leader and a fresh follower opening the same old store agree.
        """
        appends = sorted(
            (ordinal, provider)
            for provider, entry in manifest["providers"].items()
            for ordinal in entry["dates"])
        log = [["append", provider, ordinal] for ordinal, provider in appends]
        log += [["report", profile] for profile in sorted(manifest["reports"])]
        migrated = dict(manifest)
        migrated["log"] = log
        migrated["store_version"] = len(log)
        migrated["data_version"] = len(appends)
        return migrated

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Flush any batched state, making the store durable.

        Idempotent and cheap when nothing is pending: only a store whose
        in-memory manifest is ahead of the durable one (``sync=False``
        appends since the last :meth:`flush`) pays for the fsync chain.
        """
        with self._write_lock:
            if self._dirty_files or self._dirty_dirs or self._manifest_dirty:
                self._sync_dirty()
                self._write_manifest()

    def __enter__(self) -> "ArchiveStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Even on an in-flight exception the already-appended snapshots
        # are good data; making them durable is strictly better than
        # silently dropping a batched tail on the floor.
        self.close()

    # -- manifest ---------------------------------------------------------
    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Flush a directory entry (new file / rename) to stable storage."""
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("store.dir.fsync")
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _publish_manifest(self, manifest: dict) -> None:
        """Write ``manifest`` durably up to the atomic rename.

        After this returns the on-disk manifest *is* ``manifest`` —
        callers that need to distinguish pre- from post-publish failures
        (the append rollback) call this and then
        :meth:`_fsync_dir` separately.
        """
        text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        tmp = self._manifest_path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            if faults.ACTIVE is None:
                handle.write(text)
            else:
                # A torn tmp write is the safe tear: the real manifest
                # is untouched and the next open discards the tmp.
                faults.ACTIVE.torn_write("store.manifest.write", handle, text)
            handle.flush()
            if faults.ACTIVE is not None:
                faults.ACTIVE.hit("store.manifest.fsync")
            os.fsync(handle.fileno())
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("store.manifest.rename.before")
        os.replace(tmp, self._manifest_path)

    def _write_manifest(self, manifest: Optional[dict] = None) -> None:
        if manifest is None:
            manifest = self._manifest
        self._publish_manifest(manifest)
        self._manifest_dirty = False
        # The rename itself must survive power loss, not just the bytes.
        self._fsync_dir(self.root)

    @property
    def version(self) -> int:
        """Monotonic store version; bumps on every mutation.  ETag token."""
        return self._manifest["store_version"]

    @property
    def data_version(self) -> int:
        """Version of the snapshot data only (report saves don't bump it).

        The query layer keys its materialised archives/index on this, so
        storing a report does not force an archive reload.
        """
        return self._manifest.get("data_version", self._manifest["store_version"])

    def providers(self) -> tuple[str, ...]:
        """Stored provider names, sorted."""
        return tuple(sorted(self._manifest["providers"]))

    def dates(self, provider: str) -> list[dt.date]:
        """Stored snapshot dates of ``provider``, in append (= date) order."""
        # One manifest read: published manifests are never mutated in
        # place, so the entry is a consistent snapshot under appends.
        entry = self._manifest["providers"].get(provider)
        if entry is None:
            return []
        return [dt.date.fromordinal(o) for o in entry["dates"]]

    def __len__(self) -> int:
        return sum(len(p["dates"]) for p in self._manifest["providers"].values())

    # -- the shared domain table ------------------------------------------
    def _table(self) -> _TableState:
        """The persisted table, interned into the process id space (cached).

        Replay stops at the manifest's entry count; a longer file holds an
        orphaned tail from a crashed append, which is truncated away so
        the next append starts from the durable state.  When the table
        was written entirely under the current default-PSL version, the
        stored bases additionally seed the interner's base-id column —
        after which *nothing* in this process ever PSL-parses a stored
        name again.
        """
        state = self._table_state
        if state is None:
            # Built under the write lock: the first load may truncate an
            # orphaned tail, which must not race an in-flight append that
            # is growing the very same file.
            with self._write_lock:
                state = self._table_state
                if state is not None:
                    return state
                expected = self._manifest["interner"]["entries"]
                if self._table_path.exists():
                    data = self._table_path.read_bytes()
                    state = _decode_table(data, expected, self._table_path)
                    if state.consumed_bytes < len(data) and not self.read_only:
                        # Bytes past the manifest's count: an orphaned
                        # tail from a crashed append — unless this opener
                        # is read-only, in which case they may equally be
                        # another process's append in flight and must
                        # stay untouched.
                        with self._table_path.open("r+b") as handle:
                            handle.truncate(state.consumed_bytes)
                else:
                    if expected:
                        raise StoreError(
                            f"manifest names missing table {self._table_path}")
                    state = _TableState()
                psl = default_list()
                if self._manifest["interner"]["psl_version"] == psl.version:
                    column = default_interner().base_column(psl)
                    seed = column.seed
                    for gid, base_gid in zip(state.gids, state.base_gids):
                        seed(gid, base_gid)
                self._table_state = state
        return state

    def _table_append(self, state: _TableState, gid: int, column) -> tuple[int, bytes]:
        """Ensure ``gid`` (and its base) are table entries; return new bytes."""
        interner = default_interner()
        index = state.sid_by_gid()
        encoded = b""
        base_gid = column.base_id(gid)
        if base_gid != gid and base_gid not in index:
            base_sid = state.append(base_gid, base_gid)
            encoded += _encode_table_entry(interner.domain(base_gid), base_sid)
        sid = len(state.gids)
        base_sid = sid if base_gid == gid else index[base_gid]
        state.append(gid, base_gid)
        encoded += _encode_table_entry(interner.domain(gid), base_sid)
        return sid, encoded

    # -- shard plumbing ---------------------------------------------------
    def _shard_path(self, provider: str, month: str) -> Path:
        return self.root / "shards" / provider / f"{month}.rls"

    def _shard_records(self, provider: str, month: str,
                       manifest: Optional[dict] = None) -> int:
        """The manifest's record count for a shard (the durable truth).

        ``manifest`` lets a multi-step reader pin one published manifest
        so a concurrent append cannot shift the counts mid-walk.
        """
        if manifest is None:
            manifest = self._manifest
        entry = manifest["providers"].get(provider)
        return entry["shards"].get(month, 0) if entry else 0

    def _shard_append_offset(self, provider: str, month: str) -> int:
        """Byte offset after the shard's last durable record.

        Scanned once per open store (headers only, payloads skipped);
        a longer file holds an orphaned tail from an append that crashed
        before its manifest flush, which is truncated away so
        re-appending that day is valid again instead of a silent
        duplicate.
        """
        key = (provider, month)
        offset = self._shard_offsets.get(key)
        if offset is None:
            offset = 0
            path = self._shard_path(provider, month)
            if path.exists():
                data = path.read_bytes()
                for *_, end in _iter_shard_records(
                        data, path, self._shard_records(provider, month),
                        decode_payload=False):
                    offset = end
                if offset < len(data):
                    with path.open("r+b") as handle:
                        handle.truncate(offset)
            self._shard_offsets[key] = offset
        return offset

    def _months(self, provider: str,
                manifest: Optional[dict] = None) -> list[str]:
        if manifest is None:
            manifest = self._manifest
        entry = manifest["providers"].get(provider)
        return sorted(entry["shards"]) if entry else []

    @staticmethod
    def _append_file(path: Path, data: bytes, sync: bool,
                     point: str = "store.file") -> None:
        """Append ``data`` to ``path``'s tail (the write-ahead half).

        ``point`` names the fault-injection site (``store.table`` /
        ``store.shard``): ``<point>.write`` may tear or fail the write,
        ``<point>.fsync`` may fail the durability step — exactly the
        two distinct failure modes a real disk offers.
        """
        with path.open("ab") as handle:
            if faults.ACTIVE is None:
                handle.write(data)
            else:
                faults.ACTIVE.torn_write(point + ".write", handle, data)
            if sync:
                handle.flush()
                if faults.ACTIVE is not None:
                    faults.ACTIVE.hit(point + ".fsync")
                os.fsync(handle.fileno())

    # -- appends ----------------------------------------------------------
    def append(self, snapshot: ListSnapshot, sync: bool = True) -> None:
        """Append one snapshot (strictly after the provider's last date).

        Concurrent-safe against in-process readers: writers serialise on
        the store's write lock, new table/shard bytes are written (and,
        with ``sync``, fsynced) *before* the manifest flips, and the
        in-memory manifest is published as one new dict — a reader never
        observes a version whose record counts outrun the data on disk.
        With ``sync`` (the default) the manifest is rewritten durably per
        append; batch callers may pass ``sync=False`` and :meth:`flush`
        once, which fsyncs the accumulated tails first.
        """
        start = time.perf_counter()
        self._forbid_mutation("append")
        provider = snapshot.provider
        if (not provider or "/" in provider or "\\" in provider
                or provider.startswith(".")):
            # Provider names become shard path components; reject anything
            # that could escape the store root.
            raise StoreError(f"invalid provider name {provider!r}")
        with self._write_lock:
            manifest = self._manifest
            entry = manifest["providers"].get(provider, {"dates": [], "shards": {}})
            ordinal = snapshot.date.toordinal()
            if entry["dates"] and ordinal <= entry["dates"][-1]:
                last = dt.date.fromordinal(entry["dates"][-1])
                raise StoreConflictError(
                    f"append-only: {provider} snapshot {snapshot.date} is not after "
                    f"the stored {last}")
            table = self._table()
            table_len_before = len(table)
            table_bytes_before = table.consumed_bytes
            psl = default_list()
            column = default_interner().base_column(psl)
            index = table.sid_by_gid()
            month = _month_key(snapshot.date)
            path = self._shard_path(provider, month)
            offset = self._shard_append_offset(provider, month)
            published = False
            try:
                # Inside the try: _table_append mutates the in-memory
                # table per new domain, and a mid-loop failure (e.g. a
                # name the base-id column cannot normalise) must unwind
                # those entries like any other failed append.
                new_table_bytes = bytearray()
                store_ids = array("I")
                for gid in snapshot.entry_ids():
                    sid = index.get(gid)
                    if sid is None:
                        sid, encoded = self._table_append(table, gid, column)
                        new_table_bytes += encoded
                    store_ids.append(sid)
                # Chunked payload: each CHUNK_ENTRIES-sized rank range is
                # compressed independently so readers can inflate only the
                # ranges a query touches.  The chunk size is read here, at
                # append time; readers follow the record's own directory.
                chunk_entries = CHUNK_ENTRIES
                directory = bytearray()
                payload = bytearray()
                for start in range(0, len(store_ids), chunk_entries):
                    piece = store_ids[start:start + chunk_entries]
                    compressed = zlib.compress(_pack_ids(piece), 6)
                    directory += _CHUNK_DIR.pack(len(piece), len(compressed))
                    payload += compressed
                record = _HEADER.pack(_MAGIC, ordinal, psl.version,
                                      len(store_ids),
                                      len(directory) // _CHUNK_DIR.size
                                      ) + bytes(directory) + bytes(payload)
                if new_table_bytes:
                    self._append_file(self._table_path, bytes(new_table_bytes),
                                      sync, point="store.table")
                    table.consumed_bytes += len(new_table_bytes)
                    if not sync:
                        self._dirty_files.add(self._table_path)
                provider_dir = path.parent
                new_provider_dir = not provider_dir.exists()
                provider_dir.mkdir(parents=True, exist_ok=True)
                new_shard = not path.exists()
                self._append_file(path, record, sync, point="store.shard")
                # New directory entries (the shard file, and on a
                # provider's first shard its directory) must be durable
                # before a manifest may name them; with sync=False they
                # join the dirty set the next durable write drains.
                if new_shard:
                    self._dirty_dirs.add(provider_dir)
                if new_provider_dir:
                    self._dirty_dirs.add(provider_dir.parent)
                if not sync:
                    self._dirty_files.add(path)
                self._shard_offsets[(provider, month)] = offset + len(record)
                # Copy-on-write manifest: the published dicts are never
                # mutated, so readers holding the old reference stay
                # consistent and the swap below is the atomic publish point.
                providers = dict(manifest["providers"])
                providers[provider] = {
                    "dates": entry["dates"] + [ordinal],
                    "shards": {**entry["shards"],
                               month: entry["shards"].get(month, 0) + 1},
                }
                interner_entry = dict(manifest["interner"])
                if interner_entry["entries"] == 0:
                    interner_entry["psl_version"] = psl.version
                elif interner_entry["psl_version"] != psl.version:
                    # Mixed-version table: stored bases are only trusted
                    # when the whole table was normalised under one (the
                    # current) version.
                    interner_entry["psl_version"] = None
                interner_entry["entries"] = len(table)
                new_manifest = dict(manifest)
                # A v2 store's first append introduces v3 records, so the
                # manifest advertises the format old readers must refuse.
                new_manifest["format_version"] = FORMAT_VERSION
                new_manifest["providers"] = providers
                new_manifest["interner"] = interner_entry
                new_manifest["store_version"] = manifest["store_version"] + 1
                new_manifest["data_version"] = manifest.get("data_version", 0) + 1
                new_manifest["log"] = manifest["log"] + [
                    ["append", provider, ordinal]]
                if sync:
                    # Everything the manifest is about to name must be
                    # durable first: this append's tails were fsynced
                    # above, but earlier sync=False appends may still owe
                    # theirs (the manifest counts their records too).
                    self._sync_dirty()
                    self._publish_manifest(new_manifest)
                    published = True
                    if faults.ACTIVE is not None:
                        # Post-rename faults land here, after ``published``
                        # is set: the durable manifest already names the
                        # record, so rollback below must not run.
                        faults.ACTIVE.hit("store.manifest.rename.after")
                    # The rename itself must survive power loss too.
                    self._fsync_dir(self.root)
            except BaseException as error:
                if faults.is_crash(error):
                    # A simulated process death never gets to clean up:
                    # leave the torn tails exactly as a real crash would
                    # and let the next open's recovery truncate them.
                    raise
                if published:
                    # The durable manifest already names this record (only
                    # a post-rename step failed): the data must stay, and
                    # the in-memory state must agree with the disk.
                    self._manifest = new_manifest
                    raise
                # Nothing was published, so whatever this append managed
                # to write is an orphan — and appends always write at
                # EOF, so a partial tail buried under a later successful
                # append would be replayed in the newer record's place,
                # while the extended in-memory table would stop future
                # appends from re-encoding the lost entries.  Roll the
                # file tails and the in-memory table back to the
                # still-published state before re-raising.
                if path.exists():
                    with path.open("r+b") as handle:
                        handle.truncate(offset)
                self._shard_offsets[(provider, month)] = offset
                if len(table) > table_len_before:
                    table.consumed_bytes = table_bytes_before
                    if self._table_path.exists():
                        with self._table_path.open("r+b") as handle:
                            handle.truncate(table_bytes_before)
                    del table.gids[table_len_before:]
                    del table.base_gids[table_len_before:]
                    table._sid_by_gid = None
                raise
            self._manifest = new_manifest
            if not sync:
                self._manifest_dirty = True
        # Only a fully published append is counted; the rollback paths
        # above re-raise before reaching here.
        _M_APPENDS.inc()
        _M_APPEND_SECONDS.observe(time.perf_counter() - start)
        obslog.log_event(
            "store.append", level="debug", provider=provider,
            date=snapshot.date.isoformat(), entries=len(snapshot),
            store_version=new_manifest["store_version"])

    def append_archive(self, archive: ListArchive) -> None:
        """Append every snapshot of ``archive`` (one manifest write)."""
        for snapshot in archive:
            self.append(snapshot, sync=False)
        self.flush()

    def _sync_dirty(self) -> None:
        """Fsync every file tail and directory entry owed since the last
        durable manifest (the write-ahead half of a batched append)."""
        for path in sorted(self._dirty_files):
            with path.open("rb") as handle:
                if faults.ACTIVE is not None:
                    faults.ACTIVE.hit("store.dirty.fsync")
                os.fsync(handle.fileno())
        self._dirty_files.clear()
        for directory in sorted(self._dirty_dirs):
            self._fsync_dir(directory)
        self._dirty_dirs.clear()

    def flush(self) -> None:
        """Make batched ``sync=False`` appends durable.

        Fsyncs every table/shard tail (and new directory entry) written
        since the last flush, then rewrites the manifest — the same
        write-ahead order a synced append uses, amortised over the batch.
        """
        self._forbid_mutation("flush")
        with self._write_lock:
            self._sync_dirty()
            self._write_manifest()

    def _forbid_mutation(self, operation: str) -> None:
        if self.read_only:
            raise StoreError(
                f"{self.root}: store opened read_only; {operation} is not "
                f"allowed (another process owns writes)")

    def refresh(self) -> bool:
        """Adopt mutations another process published to this store's disk.

        The multi-process discovery path: a writer process appends and
        publishes its manifest with an atomic rename, and each read-only
        worker calls ``refresh()`` to observe it — re-reading the
        manifest (readers see the old or the new file, never a tear) and
        *extending* the in-memory table state from ``consumed_bytes``
        with only the new tail bytes, interning just the new names.  The
        table is extended **before** the manifest reference is swapped,
        so an in-process reader can never hold a manifest whose record
        counts outrun the decoded table.  Returns whether anything new
        was adopted.

        Safe against a writer appending concurrently: table bytes are on
        disk (page-cache coherent) before the manifest names them, and
        bytes beyond the refreshed manifest's counts are simply left
        undecoded until a later refresh.
        """
        with self._write_lock:
            manifest = json.loads(
                self._manifest_path.read_text(encoding="utf-8"))
            if manifest.get("format_version") not in SUPPORTED_FORMATS:
                raise StoreError(
                    f"{self._manifest_path}: unsupported store format "
                    f"{manifest.get('format_version')!r}")
            if "log" not in manifest:
                manifest = self._synthesise_log(manifest)
            current = self._manifest["store_version"]
            if manifest["store_version"] == current:
                return False
            if manifest["store_version"] < current:
                raise StoreError(
                    f"{self._manifest_path}: store version went backwards "
                    f"({current} -> {manifest['store_version']}); "
                    f"the store was replaced underneath this process")
            state = self._table_state
            if state is not None:
                expected = manifest["interner"]["entries"]
                if expected < len(state.gids):
                    raise StoreError(
                        f"{self._table_path}: table shrank from "
                        f"{len(state.gids)} to {expected} entries; "
                        f"the store was replaced underneath this process")
                if expected > len(state.gids):
                    before = len(state.gids)
                    with self._table_path.open("rb") as handle:
                        handle.seek(state.consumed_bytes)
                        data = handle.read()
                    _decode_table(data, expected, self._table_path,
                                  state=state,
                                  base_offset=state.consumed_bytes)
                    psl = default_list()
                    if manifest["interner"]["psl_version"] == psl.version:
                        seed = default_interner().base_column(psl).seed
                        for gid, base_gid in zip(state.gids[before:],
                                                 state.base_gids[before:]):
                            seed(gid, base_gid)
            # Another process may have appended more records to months
            # this process had already scanned; drop the cached offsets
            # so a (writable) store re-scans before its next append.
            self._shard_offsets.clear()
            self._manifest = manifest
        return True

    # -- replication ------------------------------------------------------
    def mutation_log(self, since: int = 0,
                     limit: Optional[int] = None) -> list[dict]:
        """Materialised mutation-log entries for versions ``> since``.

        The manifest's ``log`` records every mutation in global order —
        entry ``i`` produced store version ``i + 1`` — which is exactly
        what a follower needs: replaying the log through the ordinary
        append machinery reproduces the leader's table first-seen order,
        hence byte-identical ``interner.tbl`` and shard files.  Each
        returned dict is JSON-ready::

            {"version": 7, "kind": "append", "provider": "alexa",
             "date": "2018-05-01", "entries": ["a.com", ...]}
            {"version": 9, "kind": "report", "profile": "default",
             "document": {...}}

        ``since`` is the follower's current store version; ``limit``
        bounds the batch (appends carry whole days, so batches are kept
        small on the wire).
        """
        manifest = self._manifest  # one pinned, never-mutated reference
        log = manifest["log"]
        if since < 0:
            since = 0
        stop = len(log) if limit is None else min(len(log), since + limit)
        entries: list[dict] = []
        for index in range(since, stop):
            record = log[index]
            kind = record[0]
            if kind == "append":
                _, provider, ordinal = record
                date = dt.date.fromordinal(ordinal)
                snapshot = self.load_snapshot(provider, date)
                entries.append({"version": index + 1, "kind": "append",
                                "provider": provider,
                                "date": date.isoformat(),
                                "entries": list(snapshot.entries)})
            else:
                _, profile = record
                entries.append({"version": index + 1, "kind": "report",
                                "profile": profile,
                                "document": json.loads(
                                    self.load_report_bytes(profile))})
        return entries

    # -- loads ------------------------------------------------------------
    def _inflate(self, raw: bytes) -> bytes:
        """Decompress one chunk, tallying the store's inflation counters."""
        self.chunks_inflated += 1
        self.chunk_bytes_inflated += len(raw)
        return zlib.decompress(raw)

    def _replay(self, provider: str,
                manifest: Optional[dict] = None) -> Iterator[tuple[int, int, array]]:
        """Yield ``(ordinal, psl_version, entry_gids)`` per stored day.

        ``entry_gids`` is a rank-ordered process-id column — translated
        from store ids by one array lookup per entry, no strings.  Each
        record is inflated chunk by chunk straight into the id column
        (one transient chunk-sized array at a time, never a boxed
        whole-day tuple).  The walk pins one published manifest up
        front, so a concurrent append can neither shift the record
        counts mid-iteration nor surface a half-written tail (bytes
        past the pinned counts are simply never decoded).
        """
        if manifest is None:
            manifest = self._manifest
        gids = self._table().gids
        lookup = gids.__getitem__
        for month in self._months(provider, manifest):
            path = self._shard_path(provider, month)
            if not path.exists():
                raise StoreError(f"manifest names missing shard {path}")
            expected = self._shard_records(provider, month, manifest)
            records = 0
            for ordinal, psl_version, chunks, _ in _iter_shard_records(
                    _shard_view(path), path, expected):
                records += 1
                entry_gids = array("I")
                for _count, raw in chunks:
                    entry_gids.extend(
                        map(lookup, _unpack_ids(self._inflate(raw))))
                yield ordinal, psl_version, entry_gids
            if records < expected:
                raise StoreError(
                    f"{path}: holds {records} records, manifest expects {expected}")

    def iter_snapshots(self, provider: str) -> Iterator[ListSnapshot]:
        """Stream the provider's snapshots in date order (lazy, columnar)."""
        for ordinal, _, entry_gids in self._replay(provider):
            yield ListSnapshot.from_ids(provider=provider,
                                        date=dt.date.fromordinal(ordinal),
                                        ids=entry_gids)

    def _record_chunks(self, provider: str, date: dt.date) -> _Chunks:
        """One day's still-compressed chunk list (the lazy-read entry).

        Walks the month shard's headers only — no other day's payload is
        inflated, and the matched day's chunks stay compressed until the
        caller touches them.
        """
        manifest = self._manifest
        month = _month_key(date)
        path = self._shard_path(provider, month)
        if month not in self._months(provider, manifest) or not path.exists():
            raise KeyError(f"{provider} has no stored snapshot for {date}")
        target = date.toordinal()
        for ordinal, _, chunks, _ in _iter_shard_records(
                _shard_view(path), path,
                self._shard_records(provider, month, manifest)):
            if ordinal == target:
                return chunks
        raise KeyError(f"{provider} has no stored snapshot for {date}")

    def load_snapshot(self, provider: str, date: dt.date) -> ListSnapshot:
        """Load one snapshot, decoding only its month shard."""
        store_ids = array("I")
        for _count, raw in self._record_chunks(provider, date):
            store_ids += _unpack_ids(self._inflate(raw))
        gids = self._table().gids
        entry_gids = array("I", map(gids.__getitem__, store_ids))
        return ListSnapshot.from_ids(provider=provider, date=date,
                                     ids=entry_gids)

    def load_head(self, provider: str, date: dt.date, n: int) -> ListSnapshot:
        """Load only the top-``n`` head of one stored day.

        Decompresses just the leading ``ceil(n / chunk)`` chunks of the
        day's record — on a chunked (v3) 1M-entry day a ``top(1000)``
        inflates one chunk, not the megabytes behind it.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        head_sids = array("I")
        for count, raw in self._record_chunks(provider, date):
            if len(head_sids) >= n:
                break
            head_sids += _unpack_ids(self._inflate(raw))
        gids = self._table().gids
        entry_gids = array("I", map(gids.__getitem__, head_sids[:n]))
        return ListSnapshot.from_ids(provider=provider, date=date,
                                     ids=entry_gids)

    def rank_of_id(self, provider: str, date: dt.date,
                   domain_id: int) -> Optional[int]:
        """1-based rank of an interned id on one stored day, or ``None``.

        A point query: the store-id is resolved through the table's
        process-id index, then the day's chunks are inflated one at a
        time until the id is found — unmatched chunks ahead of it are
        the only decompression paid, and chunks behind it are never
        touched.
        """
        sid = self._table().sid_by_gid().get(domain_id)
        if sid is None:
            return None
        rank_base = 0
        for count, raw in self._record_chunks(provider, date):
            chunk = _unpack_ids(self._inflate(raw))
            try:
                return rank_base + chunk.index(sid) + 1
            except ValueError:
                rank_base += len(chunk)
        return None

    def load_archive(self, provider: str, warm: bool = True) -> ListArchive:
        """Rebuild the provider's full archive, without materialising strings.

        With ``warm`` (the default) the per-day base-domain **id** sets
        are replayed from the stored bases — a pure integer refcount pass
        over the pre-seeded base-id column — and installed into the
        archive's :mod:`repro.core.cache` entry, so the delta engine
        starts hot.  Seeding is skipped when the default PSL version no
        longer matches the one recorded at append time (the stored bases
        would be stale); the archive itself is always exact.
        """
        start = time.perf_counter()
        manifest = self._manifest
        if provider not in manifest["providers"]:
            raise KeyError(f"no archive stored for provider {provider!r}")
        psl = default_list()
        interner = default_interner()
        base_id = interner.base_column(psl).base_id
        boxed = interner.boxed
        snapshots: list[ListSnapshot] = []
        per_day: dict[dt.date, frozenset[int]] = {}
        counts: dict[int, int] = {}
        prev_ids: Optional[frozenset[int]] = None
        prev_frozen: frozenset[int] = frozenset()
        warmable = warm
        for ordinal, psl_version, entry_gids in self._replay(provider, manifest):
            date = dt.date.fromordinal(ordinal)
            snapshot = ListSnapshot.from_ids(provider=provider, date=date,
                                             ids=entry_gids)
            snapshots.append(snapshot)
            if not warmable:
                continue
            if psl_version != psl.version:
                # Some record predates the current rule set: its table
                # bases were stamped stale, so the column was not seeded.
                warmable = False
                continue
            # Transient set, NOT snapshot.id_set(): the cached form would
            # pin every day's full-size frozenset from load on — the
            # delta below only ever needs a two-day window, and analyses
            # that want per-day sets build (and cache) them lazily.
            current = interner.id_set(entry_gids)
            if prev_ids is None:
                for gid in entry_gids:
                    base = boxed[base_id(gid)]
                    counts[base] = counts.get(base, 0) + 1
                frozen = frozenset(counts)
            else:
                removed = prev_ids - current
                added = current - prev_ids
                if removed or added:
                    for gid in removed:
                        base = boxed[base_id(gid)]
                        remaining = counts[base] - 1
                        if remaining:
                            counts[base] = remaining
                        else:
                            del counts[base]
                    for gid in added:
                        base = boxed[base_id(gid)]
                        counts[base] = counts.get(base, 0) + 1
                    frozen = frozenset(counts)
                else:
                    frozen = prev_frozen
            per_day[date] = frozen
            prev_ids = current
            prev_frozen = frozen
        archive = ListArchive.from_snapshots(snapshots, provider=provider)
        if warmable and len(per_day) == len(snapshots):
            seed_base_id_sets(archive, per_day, psl=psl)
        duration = time.perf_counter() - start
        _M_ARCHIVE_LOADS.inc()
        _M_ARCHIVE_LOAD_SECONDS.observe(duration)
        obslog.log_event(
            "store.load_archive", level="debug", provider=provider,
            days=len(snapshots), warm_started=warmable and bool(per_day),
            duration_ms=round(duration * 1000.0, 3))
        return archive

    def load_archives(self, providers: Optional[Iterable[str]] = None,
                      warm: bool = True) -> dict[str, ListArchive]:
        """Load several providers' archives (default: all stored)."""
        names = tuple(providers) if providers is not None else self.providers()
        return {name: self.load_archive(name, warm=warm) for name in names}

    # -- scenario reports -------------------------------------------------
    def _report_path(self, profile: str) -> Path:
        if not profile or "/" in profile or "\\" in profile or profile.startswith("."):
            raise StoreError(f"invalid profile name {profile!r}")
        return self.root / "reports" / f"{profile}.json"

    def report_names(self) -> tuple[str, ...]:
        """Names of stored scenario reports, sorted."""
        return tuple(sorted(self._manifest["reports"]))

    def save_report(self, report) -> Path:
        """Store a :class:`~repro.scenarios.runner.ScenarioReport` document.

        The exact ``to_json()`` bytes are persisted, so serving the file
        is byte-identical to re-running the scenario.
        """
        return self.save_report_bytes(report.profile,
                                      report.to_json().encode("utf-8"))

    def save_report_bytes(self, profile: str, document: bytes) -> Path:
        """Store an already-serialised report document under ``profile``.

        The replication path lands here: a follower receives the leader's
        report bytes and persists them verbatim, so the two stores serve
        identical documents.
        """
        self._forbid_mutation("save_report")
        path = self._report_path(profile)
        with self._write_lock:
            new_dir = not path.parent.exists()
            path.parent.mkdir(parents=True, exist_ok=True)
            # Same write-ahead shape as appends: the bytes (and, for a
            # fresh reports/ directory, its entry) are durable before the
            # manifest may name the profile.
            tmp = path.with_suffix(".json.tmp")
            with tmp.open("wb") as handle:
                if faults.ACTIVE is None:
                    handle.write(document)
                else:
                    faults.ACTIVE.torn_write("store.report.write", handle,
                                             document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self._fsync_dir(path.parent)
            if new_dir:
                self._fsync_dir(self.root)
            manifest = self._manifest
            new_manifest = dict(manifest)
            if profile not in manifest["reports"]:
                new_manifest["reports"] = sorted(
                    manifest["reports"] + [profile])
            new_manifest["store_version"] = manifest["store_version"] + 1
            new_manifest["log"] = manifest["log"] + [["report", profile]]
            self._write_manifest(new_manifest)
            self._manifest = new_manifest
        return path

    def load_report_bytes(self, profile: str) -> bytes:
        """The stored report document, as served bytes."""
        path = self._report_path(profile)
        if profile not in self._manifest["reports"] or not path.exists():
            raise KeyError(f"no stored report for profile {profile!r}")
        return path.read_bytes()

    # -- convenience ------------------------------------------------------
    @classmethod
    def from_archives(cls, root: str | Path,
                      archives: Mapping[str, ListArchive]) -> "ArchiveStore":
        """Create a store at ``root`` holding ``archives`` (keyed by name)."""
        store = cls(root)
        for name in sorted(archives):
            store.append_archive(archives[name])
        return store
