"""Deterministic JSON query API over a stored archive corpus.

:class:`QueryService` binds an :class:`~repro.service.store.ArchiveStore`
to the analysis library and answers the ``/v1`` endpoints:

========================================  =====================================
``GET /v1/meta``                          store/version/provider inventory
``GET /v1/domains/{name}/history``        per-provider rank history, longevity,
                                          days-in-top-k (``providers=``,
                                          ``start=``, ``end=``, ``top_k=``)
``GET /v1/providers/{p}/stability``       the Section-6.1 stability battery
                                          (``top_n=``)
``GET /v1/scenarios/{profile}/report``    the stored scenario report document
``GET /v1/compare``                       daily cross-list intersections
                                          (``providers=a,b``, ``top_n=``)
``GET /v1/replication/log``               the store's mutation log for
                                          followers (``since=``, ``max=``)
``GET /v1/health``                        role, versions, staleness, degraded
                                          flags (uncached)
``GET /v1/ready``                         readiness probe: 200 serving /
                                          503 still syncing (uncached)
``GET /v1/metrics``                       Prometheus text exposition of the
                                          process metrics registry plus the
                                          service's hot-path counters
                                          (uncached)
``POST /v1/ingest``                       append one day's snapshot (JSON or
                                          CSV body) — live, no restart
                                          (leader role only; followers 403)
``POST /v1/query``                        batch read: many GET targets in one
                                          request body
========================================  =====================================

Every payload is built from the same :mod:`repro.core` /
:mod:`repro.scenarios` calls a library user would make directly, floats
pass through :func:`repro.scenarios.runner.canonical_float`, and
serialisation is canonical JSON (sorted keys, two-space indent, trailing
newline) — so an endpoint's bytes are *identical* to computing the answer
in-process (asserted in ``tests/test_service_api.py``).

Responses carry a strong ETag (SHA-256 of the body) and honour
``If-None-Match``; bodies are memoised in a bounded LRU keyed on
``(store.version, canonical request)``, so a mutation-free store serves
repeated queries from memory and any append invalidates everything at
once.

**Consistency model.**  The service runs under ``ThreadingHTTPServer``;
one lock guards *all* shared state — the LRU, the materialised archives
and index, and the version the cache key is derived from.  A cache key's
version and its body are read/produced inside one continuous lock hold,
and ``/v1/ingest`` mutates under the same lock: store append (durable,
atomic manifest publish) → incremental delta-engine extension
(:func:`repro.core.cache.extend_base_id_sets`) → in-process
:meth:`~repro.service.index.DomainIndex.add`.  Once an ingest response
is on the wire, every subsequent read observes the new day.

The HTTP layer is a hardened stdlib ``http.server`` wrapper
(:func:`create_server`): request bodies are length-capped, chunked
transfer is rejected up front, protocol-level failures (malformed
request lines, overlong headers) answer with the same JSON error
envelope as the API proper, and nothing a client sends can raise out of
a handler thread (the server records would-be escapes in
``server.unhandled_errors``, which the fuzz tests assert stays empty).
All logic lives in the transport-free :meth:`QueryService.handle_request`,
which the CLI, tests and benchmarks call directly.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import io
import json
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional, Sequence
from urllib.parse import parse_qs, unquote, urlencode, urlsplit

from repro import faults
from repro.core.cache import extend_base_id_sets
from repro.obs import logging as obslog
from repro.obs import metrics, tracing
from repro.core.intersection import intersection_over_time
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.domain.name import InvalidDomainError
from repro.interning import default_interner
from repro.listio import iter_csv_domains
from repro.providers.base import ListArchive, ListSnapshot
from repro.scenarios.runner import canonical_float as _f
from repro.service.index import DomainIndex
from repro.service.store import ArchiveStore, StoreConflictError, StoreError
from repro.util.ringlog import RingLog

#: Default bound of the per-service response LRU.
DEFAULT_CACHE_SIZE = 256

#: Retained unexpected-exception detail on the service (drop-oldest).
INTERNAL_ERRORS_CAPACITY = 16

#: Retained handler-thread escapes on the server (drop-oldest).
UNHANDLED_ERRORS_CAPACITY = 64

#: Largest accepted ingest/batch request body (transport and service).
#: A real top-1M daily list is ~25 MB as JSON, so the cap leaves
#: paper-scale days comfortable headroom while still bounding a hostile
#: client's allocation.
MAX_BODY_BYTES = 64 << 20

#: Most GET targets one ``POST /v1/query`` batch may carry.
MAX_BATCH_REQUESTS = 100

#: Default / largest number of log entries one replication fetch returns
#: (append entries carry whole days, so batches stay deliberately small).
DEFAULT_REPLICATION_BATCH = 16
MAX_REPLICATION_BATCH = 256

#: Query parameters each route accepts; anything else is a 400 (a typoed
#: parameter silently changing nothing is worse than an error).
_ROUTE_PARAMS: dict[str, frozenset[str]] = {
    "meta": frozenset(),
    "history": frozenset({"providers", "start", "end", "top_k"}),
    "stability": frozenset({"top_n"}),
    "report": frozenset(),
    "compare": frozenset({"providers", "top_n"}),
    "ingest": frozenset({"provider", "date", "domain_column"}),
    "query": frozenset(),
    "replication": frozenset({"since", "max"}),
    "health": frozenset(),
    "ready": frozenset(),
    "metrics": frozenset(),
}

# Registry instruments for the API layer.  All of these sit on paths
# that already cost ≥ hundreds of µs (the wire, error envelopes,
# ingest), so the registry lock is affordable; the cached in-process
# read path uses plain ints on QueryService instead (see
# ``_metrics_families``).
_M_REQUESTS = metrics.counter(
    "repro_http_requests_total",
    "HTTP requests received on the wire, by method.",
    labelnames=("method",))
_M_REQUEST_SECONDS = metrics.histogram(
    "repro_http_request_seconds",
    "Wall-clock seconds answering one HTTP request (wire layer).")
_M_ERRORS = metrics.counter(
    "repro_http_errors_total",
    "JSON error envelopes produced, by HTTP status code.",
    labelnames=("code",))
_M_DEGRADED = metrics.counter(
    "repro_http_degraded_total",
    "503 degraded-mode answers (injected faults / shed load).")
_M_INTERNAL = metrics.counter(
    "repro_http_internal_errors_total",
    "Unexpected exceptions converted to 500 envelopes.")
_M_UNHANDLED = metrics.counter(
    "repro_http_unhandled_errors_total",
    "Exceptions that escaped a handler thread (server.unhandled_errors).")
_M_INGEST_DAYS = metrics.counter(
    "repro_ingest_days_total", "Snapshot days ingested via POST /v1/ingest.")
_M_INGEST_ROWS = metrics.counter(
    "repro_ingest_rows_total", "List rows accepted via POST /v1/ingest.")
_M_INGEST_SKIPPED = metrics.counter(
    "repro_ingest_skipped_rows_total",
    "Malformed/overlong rows skipped during CSV ingest.")
_M_INGEST_FORWARDED = metrics.counter(
    "repro_ingest_forwarded_total",
    "Ingest requests a pool read-worker proxied to the writer.")


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON error body."""

    def __init__(self, status: int, message: str,
                 allow: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        #: ``Allow`` header value for 405 answers (RFC 9110 requires it).
        self.allow = allow


@dataclass
class Response:
    """One materialised API response (transport-independent).

    ``body`` may be a :class:`memoryview` over the shared payload
    segment (:mod:`repro.service.shared_cache`): transports write it to
    the socket without ever materialising a Python ``bytes`` copy.
    """

    status: int
    body: bytes | memoryview
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def etag(self) -> Optional[str]:
        return self.headers.get("ETag")

    def json(self) -> Any:
        """The decoded body (test/CLI convenience)."""
        return json.loads(bytes(self.body).decode("utf-8"))


def json_bytes(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, indent 2, trailing newline.

    The one serialisation used for every payload — identical to
    :meth:`repro.scenarios.runner.ScenarioReport.to_json`.
    """
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _etag_of(body: bytes) -> str:
    return '"' + hashlib.sha256(body).hexdigest() + '"'


def _if_none_match_hit(header: str, etag: Optional[str]) -> bool:
    """RFC 7232 §3.2: does an ``If-None-Match`` header match ``etag``?

    The header is a comma-separated list of entity-tags or a bare
    ``*``.  Comparison is *weak* (§3.2 mandates it for If-None-Match):
    a ``W/`` weakness prefix on either side is ignored and the opaque
    tags compared byte-for-byte.
    """
    if etag is None:
        return False
    opaque = etag[2:] if etag.startswith("W/") else etag
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate and candidate == opaque:
            return True
    return False


def _is_get_route(tail: list[str]) -> bool:
    """Whether ``tail`` (path parts after ``v1``) names a GET endpoint."""
    if tail in (["meta"], ["compare"], ["health"], ["ready"], ["metrics"],
                ["replication", "log"]):
        return True
    return len(tail) == 3 and (tail[0], tail[2]) in {
        ("domains", "history"), ("providers", "stability"),
        ("scenarios", "report")}


def allowed_methods(path: str) -> str:
    """The ``Allow`` header value for ``path`` (per-resource, RFC 9110)."""
    parts = [part for part in path.split("/") if part]
    if parts[:1] == ["v1"] and parts[1:] in (["ingest"], ["query"]):
        return "POST"
    return "GET, HEAD"


def _check_params(params: Mapping[str, list[str]], route: str) -> None:
    allowed = _ROUTE_PARAMS[route]
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ApiError(
            400, f"unknown query parameter(s) for {route}: {', '.join(unknown)} "
                 f"(allowed: {', '.join(sorted(allowed)) or 'none'})")


def _parse_date(params: Mapping[str, list[str]], name: str) -> Optional[dt.date]:
    values = params.get(name)
    if not values:
        return None
    try:
        return dt.date.fromisoformat(values[-1])
    except ValueError:
        raise ApiError(400, f"{name} must be an ISO date (got {values[-1]!r})") from None


def _parse_positive_int(params: Mapping[str, list[str]], name: str) -> Optional[int]:
    values = params.get(name)
    if not values:
        return None
    try:
        value = int(values[-1])
    except ValueError:
        raise ApiError(400, f"{name} must be an integer (got {values[-1]!r})") from None
    if value <= 0:
        raise ApiError(400, f"{name} must be positive (got {value})")
    return value


def _parse_non_negative_int(params: Mapping[str, list[str]],
                            name: str) -> Optional[int]:
    values = params.get(name)
    if not values:
        return None
    try:
        value = int(values[-1])
    except ValueError:
        raise ApiError(400, f"{name} must be an integer (got {values[-1]!r})") from None
    if value < 0:
        raise ApiError(400, f"{name} must be >= 0 (got {value})")
    return value


def _parse_providers(params: Mapping[str, list[str]]) -> Optional[list[str]]:
    values = params.get("providers")
    if not values:
        return None
    names = [name.strip() for chunk in values for name in chunk.split(",")]
    names = [name for name in names if name]
    if not names:
        raise ApiError(400, "providers must name at least one provider")
    return names


def _decode_json_body(body: bytes, what: str) -> dict:
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ApiError(400, f"{what} body is not valid JSON") from None
    if not isinstance(document, dict):
        raise ApiError(400, f"{what} body must be a JSON object")
    return document


class QueryService:
    """Query layer over one archive store (transport-free).

    ``role`` is ``"leader"`` (accepts ``POST /v1/ingest``) or
    ``"follower"`` (read-only: ingest answers 403; the store mutates
    only through the attached :class:`~repro.service.replica.Replica`,
    whose staleness ``/v1/health`` and ``/v1/ready`` report).
    """

    def __init__(self, store: ArchiveStore,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 role: str = "leader") -> None:
        if role not in ("leader", "follower", "reader"):
            raise ValueError(f"role must be 'leader', 'follower' or "
                             f"'reader' (got {role!r})")
        self.store = store
        self.cache_size = cache_size
        self.role = role
        #: The follower's tailer, bound via :meth:`attach_replica`.
        self._replica = None
        #: Writer base URL a pool read-worker forwards ingest to
        #: (:meth:`set_ingest_proxy`); ``None`` keeps the follower 403.
        self._ingest_proxy: Optional[str] = None
        #: Cross-worker payload segment (:meth:`attach_shared_cache`).
        self._shared_cache = None
        self._shared_hits = 0
        self._shared_fills = 0
        self._result_cache: OrderedDict[tuple[int, str], Response] = OrderedDict()
        self._archives: dict[str, ListArchive] = {}
        self._index = DomainIndex()
        self._loaded_version: Optional[int] = None
        # Hot-path telemetry: plain ints, not registry counters.  A
        # cached read costs ~5 µs, so its entire budget (<2%, see
        # BENCH_obs.json) is one GIL-atomic ``+= 1``; readers (the
        # /v1/metrics scrape, /v1/health) see whole values, never torn.
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._bypass_reads = 0
        #: Last few unexpected exceptions answered as generic 500s; the
        #: envelope withholds their text (it can carry server paths), so
        #: this is where operators and tests find the detail.  Bounded
        #: (drop-oldest) so a client that can trigger 500s cannot grow
        #: server memory; ``internal_errors.dropped`` tallies evictions.
        self.internal_errors: RingLog = RingLog(INTERNAL_ERRORS_CAPACITY)
        # Serves under ThreadingHTTPServer: one lock guards the LRU, the
        # materialised archives/index, AND the store-version reads the
        # cache keys derive from.  Every shared-state touch in this class
        # happens inside it — readers and the ingest writer serialise
        # here, which is what makes a 200 ingest response a barrier:
        # later reads cannot miss the new day.
        self._lock = threading.RLock()

    # -- materialised state ----------------------------------------------
    def _refresh(self) -> None:
        """Catch the materialised archives/index up with the store.

        Keyed on the store's *data* version, so report saves don't force
        a reload; new snapshots of an already-loaded provider are applied
        incrementally (``archive.add`` + ``index.add``) instead of
        re-replaying the whole corpus.
        """
        with self._lock:
            if self._loaded_version == self.store.data_version:
                return
            for provider in self.store.providers():
                archive = self._archives.get(provider)
                if archive is None:
                    archive = self.store.load_archive(provider)
                    self._archives[provider] = archive
                    self._index.add_archive(archive)
                    continue
                last_loaded = archive.dates()[-1] if len(archive) else None
                if last_loaded == self.store.dates(provider)[-1]:
                    continue
                # One linear pass over the provider's shards for the tail
                # (load_snapshot per day would re-decode the shard prefix
                # per new day).
                for snapshot in self.store.iter_snapshots(provider):
                    if last_loaded is None or snapshot.date > last_loaded:
                        extend_base_id_sets(archive, snapshot)
                        self._index.add(snapshot)
            self._loaded_version = self.store.data_version

    def providers(self) -> tuple[str, ...]:
        with self._lock:
            self._refresh()
            return tuple(sorted(self._archives))

    def archive(self, provider: str) -> ListArchive:
        with self._lock:
            self._refresh()
            try:
                return self._archives[provider]
            except KeyError:
                known = ", ".join(sorted(self._archives)) or "none"
                raise ApiError(404, f"unknown provider {provider!r} "
                                    f"(stored: {known})") from None

    @property
    def index(self) -> DomainIndex:
        with self._lock:
            self._refresh()
            return self._index

    def clear_cache(self) -> None:
        """Drop memoised responses (benchmarks' cold-path switch)."""
        with self._lock:
            self._result_cache.clear()

    def attach_replica(self, replica) -> None:
        """Bind the follower's tailer so health/ready report its staleness."""
        with self._lock:
            self._replica = replica

    def attach_shared_cache(self, cache) -> None:
        """Bind a :class:`~repro.service.shared_cache.SharedPayloadCache`.

        GET misses probe it before building (a payload rendered by any
        worker serves from every worker), and freshly built payloads
        are published into it.
        """
        with self._lock:
            self._shared_cache = cache

    def set_ingest_proxy(self, base_url: str) -> None:
        """Forward ``POST /v1/ingest`` to the writer at ``base_url``.

        A pool read-worker is not a leader, but the pool's shared
        listening socket means ingest requests land on whichever worker
        accepted the connection — a reader proxies them to the single
        designated writer instead of answering 403, then refreshes from
        disk so its own next read observes the write.
        """
        with self._lock:
            self._ingest_proxy = base_url.rstrip("/")

    def refresh_from_disk(self) -> bool:
        """Adopt store versions another process published to disk.

        The pool read-worker discovery path: :meth:`ArchiveStore.refresh`
        re-reads the manifest (atomic — old or new, never torn) and
        extends the table state incrementally; the ordinary
        :meth:`_refresh` then catches the archives/index up through the
        same ``extend_base_id_sets`` + ``DomainIndex.add`` tail replay
        an in-process ingest uses.  Returns whether new versions were
        adopted.
        """
        with self._lock:
            changed = self.store.refresh()
            if changed:
                self._refresh()
            return changed

    # -- payload builders (pure, deterministic) ---------------------------
    def meta_payload(self) -> dict[str, Any]:
        """Store inventory: providers, date ranges, stored reports."""
        self._refresh()
        providers: dict[str, Any] = {}
        for name in sorted(self._archives):
            archive = self._archives[name]
            days = len(archive)
            latest = archive[days - 1] if days else None
            providers[name] = {
                "days": days,
                "first_date": archive[0].date.isoformat() if days else None,
                "last_date": latest.date.isoformat() if latest else None,
                "list_size": len(archive[0]) if days else 0,
                "domains_indexed": self.index.domain_count(name),
                # One interner lookup, not latest.entries[0]: that would
                # materialise the whole day's string tuple (a megabyte-
                # scale allocation at 1M entries) to read one name.
                "top_domain": (default_interner().domain(latest.entry_ids()[0])
                               if latest and len(latest) else None),
            }
        return {
            "service": "repro-serve",
            "store_version": self.store.version,
            "providers": providers,
            "reports": list(self.store.report_names()),
        }

    def domain_history_payload(self, domain: str,
                               providers: Optional[Sequence[str]] = None,
                               start: Optional[dt.date] = None,
                               end: Optional[dt.date] = None,
                               top_k: Optional[int] = None) -> dict[str, Any]:
        """Rank history + longevity of one domain across providers.

        Answered entirely from the :class:`DomainIndex`; byte-identical
        to scanning the archives directly (the parity tests do exactly
        that).
        """
        name = domain.strip().lower().rstrip(".")
        if not name:
            raise ApiError(400, "domain must be non-empty")
        selected = list(providers) if providers is not None else list(self.providers())
        index = self.index
        sections: dict[str, Any] = {}
        for provider in selected:
            if provider not in self._archives:
                raise ApiError(404, f"unknown provider {provider!r}")
            observations = index.history(name, provider, start=start, end=end)
            longevity = index.longevity(name, provider)
            section: dict[str, Any] = {
                "observations": [{"date": date.isoformat(), "rank": rank}
                                 for date, rank in observations],
                "days_listed": longevity.days_listed,
                "first_seen": (longevity.first_seen.isoformat()
                               if longevity.first_seen else None),
                "last_seen": (longevity.last_seen.isoformat()
                              if longevity.last_seen else None),
                "best_rank": min((r for _, r in observations), default=None),
                "worst_rank": max((r for _, r in observations), default=None),
            }
            if top_k is not None:
                section["days_in_top_k"] = index.days_in_top_k(name, provider, top_k)
            sections[provider] = section
        payload: dict[str, Any] = {"domain": name, "providers": sections}
        if start is not None:
            payload["start"] = start.isoformat()
        if end is not None:
            payload["end"] = end.isoformat()
        if top_k is not None:
            payload["top_k"] = top_k
        return payload

    def provider_stability_payload(self, provider: str,
                                   top_n: Optional[int] = None) -> dict[str, Any]:
        """The Section-6.1 stability battery for one provider's archive."""
        archive = self.archive(provider)
        changes = daily_changes(archive, top_n)
        mean_change = mean_daily_change(archive, top_n)
        new_counts = new_domains_per_day(archive, top_n)
        cumulative = cumulative_unique_domains(archive, top_n)
        counts = days_in_list(archive, top_n)
        always = (sum(1 for v in counts.values() if v == len(archive)) / len(counts)
                  if counts else 0.0)
        decay = intersection_with_reference(archive, reference_days=range(7),
                                            top_n=top_n)
        list_size = len(archive[0]) if len(archive) else 0
        head = list_size if top_n is None else min(top_n, list_size)
        return {
            "provider": provider,
            "top_n": top_n,
            "days": len(archive),
            "list_size": list_size,
            "mean_daily_change": _f(mean_change),
            "churn_fraction": _f(mean_change / max(1, head)),
            "daily_changes": {date.isoformat(): count
                              for date, count in sorted(changes.items())},
            "new_per_day": {date.isoformat(): count
                            for date, count in sorted(new_counts.items())},
            "cumulative_unique": {date.isoformat(): count
                                  for date, count in sorted(cumulative.items())},
            "distinct_domains": len(counts),
            "always_listed_share": _f(always),
            "reference_decay": {str(offset): _f(value)
                                for offset, value in sorted(decay.items())},
        }

    def compare_payload(self, providers: Optional[Sequence[str]] = None,
                        top_n: Optional[int] = None) -> dict[str, Any]:
        """Daily pairwise/three-way base-domain intersections (Figure 1a)."""
        names = sorted(providers) if providers else list(self.providers())
        if len(names) < 2:
            raise ApiError(400, "compare needs at least two providers")
        if len(names) != len(set(names)):
            raise ApiError(400, "compare providers must be distinct")
        archives = {name: self.archive(name) for name in names}
        series = intersection_over_time(archives, top_n=top_n)
        per_pair: dict[str, list[int]] = {}
        daily: dict[str, dict[str, int]] = {}
        for date, matrix in series.items():
            row = {"&".join(pair): count for pair, count in matrix.items()}
            daily[date.isoformat()] = row
            for pair, count in row.items():
                per_pair.setdefault(pair, []).append(count)
        return {
            "providers": names,
            "top_n": top_n,
            "days": len(series),
            "pairs": {
                pair: {"mean": _f(sum(counts) / len(counts)),
                       "min": min(counts), "max": max(counts)}
                for pair, counts in sorted(per_pair.items())
            },
            "series": daily,
        }

    def scenario_report_bytes(self, profile: str) -> bytes:
        """The stored scenario report document (exact persisted bytes)."""
        try:
            return self.store.load_report_bytes(profile)
        except StoreError:
            # The store rejects path-escaping profile names before lookup.
            raise ApiError(400, f"invalid profile name {profile!r}") from None
        except KeyError:
            stored = ", ".join(self.store.report_names()) or "none"
            raise ApiError(404, f"no stored report for profile {profile!r} "
                                f"(stored: {stored})") from None

    def replication_log_payload(self, since: int,
                                limit: int) -> dict[str, Any]:
        """Mutation-log entries for a follower at version ``since``.

        ``remaining`` tells the follower how far behind this batch still
        leaves it, so a bootstrap loops without a second round-trip to
        discover it has more to pull.
        """
        version = self.store.version
        entries = self.store.mutation_log(since, limit)
        return {
            "since": since,
            "store_version": version,
            "entries": entries,
            "remaining": max(0, version - since - len(entries)),
        }

    def health_payload(self) -> dict[str, Any]:
        """Liveness report: role, versions, staleness, degraded flags.

        Never memoised: a follower's staleness moves without its store
        version moving, so this payload must be rebuilt per request.
        """
        payload: dict[str, Any] = {
            "service": "repro-serve",
            "role": self.role,
            "store_version": self.store.version,
            "data_version": self.store.data_version,
            "internal_errors": len(self.internal_errors),
        }
        hits, misses = self._cache_hits, self._cache_misses
        lookups = hits + misses
        payload["cache"] = {
            "entries": len(self._result_cache),
            "capacity": self.cache_size,
            "hits": hits,
            "misses": misses,
            "evictions": self._cache_evictions,
            "hit_ratio": _f(hits / lookups) if lookups else None,
        }
        payload["store_chunks"] = {
            "inflated": self.store.chunks_inflated,
            "bytes_inflated": self.store.chunk_bytes_inflated,
        }
        if self._shared_cache is not None:
            payload["shared_cache"] = self._shared_cache.stats()
        degraded = bool(self.internal_errors)
        if self._replica is not None:
            replication = self._replica.status()
            payload["replication"] = replication
            if replication.get("breaker") not in (None, "closed") \
                    or replication.get("last_error"):
                degraded = True
        payload["status"] = "degraded" if degraded else "ok"
        return payload

    def ready_payload(self) -> tuple[int, dict[str, Any]]:
        """Readiness probe: ``(status_code, payload)``.

        A leader is ready once its store is open.  A follower is ready
        only after at least one successful sync with staleness within
        its bound — before that it answers 503 so a load balancer keeps
        traffic on caught-up nodes.
        """
        ready = True
        reason = None
        if self._replica is not None:
            ready = self._replica.ready()
            if not ready:
                reason = "replica not caught up with leader"
        payload: dict[str, Any] = {
            "ready": ready,
            "role": self.role,
            "store_version": self.store.version,
        }
        if reason:
            payload["reason"] = reason
        return (200 if ready else 503), payload

    # -- the write path ---------------------------------------------------
    def _parse_ingest_snapshot(self, body: bytes,
                               params: Mapping[str, list[str]],
                               headers: Optional[Mapping[str, str]]
                               ) -> tuple[ListSnapshot, int]:
        """Validate an ingest body into a snapshot (no shared state yet).

        Two body formats: a JSON object ``{"provider", "date",
        "entries"}``, or a ``rank,domain`` CSV body (``domain_column=2``
        for Majestic's ``rank,tld,domain`` shape) with ``provider=`` and
        ``date=`` as query parameters.  ``Content-Type`` ``text/csv``
        selects CSV explicitly; otherwise a body opening with ``{`` is
        treated as JSON.  Entries are validated as DNS names *before*
        touching the append-only interner (see
        :meth:`~repro.providers.base.ListSnapshot.from_raw_entries`); a
        CSV row failing validation is skipped (downloaded lists carry
        junk rows) while a JSON entry failing it rejects the request.
        CSV rows stream straight into the id column
        (:meth:`~repro.providers.base.ListSnapshot.from_wire_rows`), so
        a 1M-row day is never materialised as a Python string list.
        Returns the snapshot plus the skipped-row count.
        """
        if not body:
            raise ApiError(400, "ingest requires a request body")
        if len(body) > MAX_BODY_BYTES:
            raise ApiError(413, f"ingest body exceeds {MAX_BODY_BYTES} bytes")
        content_type = {key.lower(): value
                        for key, value in (headers or {}).items()
                        }.get("content-type", "")
        kind = content_type.split(";")[0].strip().lower()
        is_json = (kind in ("application/json", "text/json")
                   or (kind not in ("text/csv", "text/plain")
                       and body.lstrip()[:1] == b"{"))

        def identity(provider: object, date_raw: object) -> tuple[str, dt.date]:
            if not isinstance(provider, str) or not provider:
                raise ApiError(400, "ingest provider must be a non-empty string")
            if not isinstance(date_raw, str):
                raise ApiError(400, "ingest date must be an ISO date string")
            try:
                return provider, dt.date.fromisoformat(date_raw)
            except ValueError:
                raise ApiError(400, f"ingest date must be an ISO date "
                                    f"(got {date_raw!r})") from None

        if is_json:
            # The snapshot identity lives in the body; a provider=/date=
            # query parameter would be silently shadowed, which is the
            # exact failure mode the unknown-param policy exists to stop.
            ignored = sorted(set(params) & {"provider", "date", "domain_column"})
            if ignored:
                raise ApiError(
                    400, f"{', '.join(ignored)} query parameter(s) apply to "
                         "CSV ingest only; a JSON body carries its own "
                         "provider and date")
            document = _decode_json_body(body, "ingest")
            unknown = sorted(set(document) - {"provider", "date", "entries"})
            if unknown:
                raise ApiError(400, "unknown ingest field(s): "
                                    f"{', '.join(unknown)} "
                                    "(expected provider, date, entries)")
            provider, date = identity(document.get("provider"),
                                      document.get("date"))
            entries = document.get("entries")
            if not isinstance(entries, list) or not entries:
                raise ApiError(400, "ingest entries must be a non-empty list")
            try:
                snapshot = ListSnapshot.from_raw_entries(provider, date, entries)
            except InvalidDomainError as error:
                raise ApiError(400, f"invalid list entry: {error}") from None
            return snapshot, 0
        provider_values = params.get("provider", [])
        date_values = params.get("date", [])
        if not provider_values or not date_values:
            raise ApiError(400, "CSV ingest requires provider= and date= "
                                "query parameters")
        # Identity is validated before any row may intern: a request that
        # is going to 400 on its parameters must not grow the id space.
        provider, date = identity(provider_values[-1], date_values[-1])
        # Mirrors repro.listio.parse_top_list_csv: rank,domain by
        # default, domain_column=2 for Majestic's rank,tld,domain
        # format (the repro-serve ingest CLI exposes the same knob).
        domain_column = _parse_positive_int(params, "domain_column") or 1
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            raise ApiError(400, "CSV ingest body is not valid UTF-8") from None
        # The row filter is shared with parse_top_list_csv, so a file
        # the offline parser accepts is never rejected over the wire
        # (and a bare "domain" header line can never become the
        # rank-1 entry).  Real downloaded lists carry junk rows; like
        # the offline parser we keep going past them — but unlike it
        # we validate first and *drop* the junk, so hostile bytes
        # never occupy interner id space (JSON ingest, whose bodies
        # are constructed programmatically, stays strict instead).
        # Rows flow one at a time through validate → intern → id
        # column; only the decoded body text exists in full.
        try:
            return ListSnapshot.from_wire_rows(
                provider, date, iter_csv_domains(io.StringIO(text),
                                                 domain_column))
        except InvalidDomainError:
            raise ApiError(400, "CSV ingest body holds no rank,domain "
                                "rows (send JSON for a bare entry list)"
                           ) from None

    def _metrics_families(self) -> list:
        """Hot-path plain-int telemetry as render-time sample families.

        These values live as GIL-atomic ``int`` attributes on this
        service, the store and the index (never registry instruments —
        the hot paths that bump them cannot afford the registry lock).
        Each scrape reads the attributes directly: reads are atomic, so
        samples are whole values (no torn reads) and monotone within
        any one scraping thread.
        """
        with self._lock:
            store = self.store
            families = [
                ("repro_cache_entries", "gauge",
                 "Entries resident in the response LRU.",
                 [({}, len(self._result_cache))]),
                ("repro_cache_capacity", "gauge",
                 "Bound of the response LRU.", [({}, self.cache_size)]),
                ("repro_cache_hits_total", "counter",
                 "Response-LRU hits.", [({}, self._cache_hits)]),
                ("repro_cache_misses_total", "counter",
                 "Response-LRU misses (payload built).",
                 [({}, self._cache_misses)]),
                ("repro_cache_evictions_total", "counter",
                 "Response-LRU evictions.", [({}, self._cache_evictions)]),
                ("repro_uncached_reads_total", "counter",
                 "Reads of the uncached probe endpoints "
                 "(health/ready/metrics).", [({}, self._bypass_reads)]),
                ("repro_store_version", "gauge",
                 "Store manifest version.", [({}, store.version)]),
                ("repro_store_data_version", "gauge",
                 "Store data version (excludes report saves).",
                 [({}, store.data_version)]),
                ("repro_store_chunks_inflated_total", "counter",
                 "Compressed id chunks inflated from shards.",
                 [({}, store.chunks_inflated)]),
                ("repro_store_chunk_bytes_inflated_total", "counter",
                 "Compressed bytes inflated from shards.",
                 [({}, store.chunk_bytes_inflated)]),
                ("repro_index_lookups_total", "counter",
                 "DomainIndex posting-list lookups.",
                 [({}, self._index.lookups)]),
                ("repro_service_internal_errors", "gauge",
                 "Unexpected exceptions retained on the service.",
                 [({}, len(self.internal_errors))]),
            ]
            shared = self._shared_cache
            if shared is not None:
                families += [
                    ("repro_shared_cache_hits_total", "counter",
                     "Payloads adopted from the cross-worker segment.",
                     [({}, shared.hits)]),
                    ("repro_shared_cache_misses_total", "counter",
                     "Cross-worker segment probes that missed.",
                     [({}, shared.misses)]),
                    ("repro_shared_cache_puts_total", "counter",
                     "Payloads published into the cross-worker segment.",
                     [({}, shared.puts)]),
                    ("repro_shared_cache_skipped_puts_total", "counter",
                     "Publishes skipped at the segment's size cap.",
                     [({}, shared.skipped_puts)]),
                ]
        return families

    def ingest(self, snapshot: ListSnapshot) -> dict[str, Any]:
        """Append ``snapshot`` live: store → delta engine → index.

        Everything runs under the service lock, so the moment this
        returns, every reader (history, stability, compare, meta)
        observes the new day — no restart, no archive re-replay.  The
        store append is durable (fsynced tails, atomic manifest publish)
        before any in-process state is touched; a failed append leaves
        the service exactly as it was.
        """
        with self._lock:
            self._refresh()
            try:
                self.store.append(snapshot)
            except StoreConflictError as error:
                raise ApiError(409, str(error)) from None
            except StoreError as error:
                raise ApiError(400, str(error)) from None
            archive = self._archives.get(snapshot.provider)
            if archive is None:
                self._archives[snapshot.provider] = \
                    ListArchive.from_snapshots([snapshot])
            else:
                extend_base_id_sets(archive, snapshot)
            if self._index.last_date(snapshot.provider) != snapshot.date:
                self._index.add(snapshot)
            self._loaded_version = self.store.data_version
            entries = len(snapshot)
            _M_INGEST_DAYS.inc()
            _M_INGEST_ROWS.inc(entries)
            obslog.log_event(
                "ingest.day", provider=snapshot.provider,
                date=snapshot.date.isoformat(), entries=entries,
                store_version=self.store.version)
            return {
                "ingested": {
                    "provider": snapshot.provider,
                    "date": snapshot.date.isoformat(),
                    "entries": entries,
                },
                "store_version": self.store.version,
                "data_version": self.store.data_version,
            }

    def batch_query_payload(self, body: bytes) -> dict[str, Any]:
        """Answer many GET targets in one request (``POST /v1/query``).

        The body is ``{"requests": ["/v1/...", ...]}``; each target runs
        through the same routing/caching pipeline as a standalone GET
        (so repeated batches hit the LRU), and per-target errors are
        embedded rather than failing the batch.  The whole batch runs
        under one lock hold, so every embedded payload — and the
        top-level ``store_version`` — reflects a single store version
        even while a writer is ingesting.
        """
        document = _decode_json_body(body, "query")
        unknown = sorted(set(document) - {"requests"})
        if unknown:
            raise ApiError(400, f"unknown query field(s): {', '.join(unknown)} "
                                "(expected requests)")
        requests = document.get("requests")
        if not isinstance(requests, list) or not requests:
            raise ApiError(400, "query requests must be a non-empty list")
        if len(requests) > MAX_BATCH_REQUESTS:
            raise ApiError(400, f"query batches are capped at "
                                f"{MAX_BATCH_REQUESTS} requests "
                                f"(got {len(requests)})")
        for target in requests:
            if not isinstance(target, str) or not target.startswith("/"):
                raise ApiError(400, f"query targets must be absolute request "
                                    f"paths (got {target!r})")
        responses = []
        with self._lock:
            version = self.store.version
            for target in requests:
                try:
                    sub = self._answer_get(target)
                except ApiError as error:
                    sub = self._error_response(error)
                responses.append({
                    "target": target,
                    "status": sub.status,
                    "payload": json.loads(bytes(sub.body).decode("utf-8")),
                })
        return {
            "requests": len(responses),
            "responses": responses,
            "store_version": version,
        }

    # -- request handling -------------------------------------------------
    def _route(self, path: str, params: Mapping[str, list[str]]) -> bytes:
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "v1":
            raise ApiError(404, f"unknown path {path!r} (endpoints live under /v1)")
        tail = parts[1:]
        if tail in (["ingest"], ["query"]):
            raise ApiError(405, f"/v1/{tail[0]} requires POST", allow="POST")
        if tail == ["meta"]:
            _check_params(params, "meta")
            return json_bytes(self.meta_payload())
        if len(tail) == 3 and tail[0] == "domains" and tail[2] == "history":
            _check_params(params, "history")
            return json_bytes(self.domain_history_payload(
                tail[1],
                providers=_parse_providers(params),
                start=_parse_date(params, "start"),
                end=_parse_date(params, "end"),
                top_k=_parse_positive_int(params, "top_k")))
        if len(tail) == 3 and tail[0] == "providers" and tail[2] == "stability":
            _check_params(params, "stability")
            return json_bytes(self.provider_stability_payload(
                tail[1], top_n=_parse_positive_int(params, "top_n")))
        if len(tail) == 3 and tail[0] == "scenarios" and tail[2] == "report":
            _check_params(params, "report")
            return self.scenario_report_bytes(tail[1])
        if tail == ["compare"]:
            _check_params(params, "compare")
            return json_bytes(self.compare_payload(
                providers=_parse_providers(params),
                top_n=_parse_positive_int(params, "top_n")))
        if tail == ["replication", "log"]:
            _check_params(params, "replication")
            since = _parse_non_negative_int(params, "since") or 0
            limit = _parse_positive_int(params, "max") or DEFAULT_REPLICATION_BATCH
            if limit > MAX_REPLICATION_BATCH:
                raise ApiError(400, f"max is capped at {MAX_REPLICATION_BATCH} "
                                    f"entries (got {limit})")
            return json_bytes(self.replication_log_payload(since, limit))
        raise ApiError(404, f"unknown path {path!r}")

    def _answer_get(self, target: str) -> Response:
        """The GET pipeline: one lock hold covers version → LRU → route.

        The cache key's store version, the LRU probe, the payload build
        and the insertion all happen inside a single continuous lock
        acquisition — a concurrent ingest can run strictly before or
        strictly after, never between the version read and the body it
        is keyed to (the race the version-keyed LRU would otherwise
        cache a stale body under).
        """
        parsed = urlsplit(target)
        path = unquote(parsed.path)
        # keep_blank_values: '?top_n=' must reach validation and fail
        # loudly, not silently vanish into the default behaviour.
        params = parse_qs(parsed.query, keep_blank_values=True)
        # urlencode percent-escapes values, so '?top_n=5&top_n=10' and
        # '?top_n=5,10' canonicalise differently — a cached 200 for the
        # former must never answer the latter (which cold-paths to 400).
        canonical = path + "?" + urlencode(sorted(params.items()), doseq=True)
        parts = [part for part in path.split("/") if part]
        if parts[:1] == ["v1"] and parts[1:] in (["health"], ["ready"],
                                                 ["metrics"]):
            # Probes bypass the version-keyed LRU entirely: a follower's
            # staleness (and every metric) moves without its store
            # version moving, so a memoised body would report stale
            # state forever.
            route = parts[1]
            _check_params(params, route)
            self._bypass_reads += 1
            if route == "metrics":
                body = metrics.render(extra=self._metrics_families())
                return Response(200, body, {
                    "Content-Type": "text/plain; version=0.0.4; "
                                    "charset=utf-8",
                    "Cache-Control": "no-store",
                    "X-Repro-Store-Version": str(self.store.version),
                    "X-Repro-Cache": "bypass",
                })
            with self._lock:
                if route == "health":
                    status, payload = 200, self.health_payload()
                else:
                    status, payload = self.ready_payload()
                version = self.store.version
            body = json_bytes(payload)
            return Response(status, body, {
                "Content-Type": "application/json; charset=utf-8",
                "Cache-Control": "no-store",
                "X-Repro-Store-Version": str(version),
                "X-Repro-Cache": "bypass",
            })
        with self._lock:
            version = self.store.version
            cache_key = (version, canonical)
            cached = self._result_cache.get(cache_key)
            if cached is not None:
                self._cache_hits += 1
                self._result_cache.move_to_end(cache_key)
                response = Response(cached.status, cached.body,
                                    dict(cached.headers))
                response.headers["X-Repro-Cache"] = "hit"
                return response
            shared = self._shared_cache
            if shared is not None:
                found = shared.get(version, canonical)
                if found is not None:
                    # Another worker already rendered these bytes; adopt
                    # them (and their ETag) without re-routing, and seed
                    # this process's LRU so the next read is a dict hit.
                    body, etag = found
                    self._shared_hits += 1
                    response = Response(200, body, {
                        "Content-Type": "application/json; charset=utf-8",
                        "ETag": etag,
                        "X-Repro-Store-Version": str(version),
                        "X-Repro-Cache": "shared",
                    })
                    self._result_cache[cache_key] = Response(
                        response.status, body, dict(response.headers))
                    while len(self._result_cache) > self.cache_size:
                        self._result_cache.popitem(last=False)
                        self._cache_evictions += 1
                    return response
            body = self._route(path, params)  # ApiError propagates
            self._cache_misses += 1
            etag = _etag_of(body)
            response = Response(200, body, {
                "Content-Type": "application/json; charset=utf-8",
                "ETag": etag,
                "X-Repro-Store-Version": str(version),
                "X-Repro-Cache": "miss",
            })
            # Payloads are deterministic per version, so two threads
            # racing to fill the same key store identical bodies.
            self._result_cache[cache_key] = Response(
                response.status, body, dict(response.headers))
            while len(self._result_cache) > self.cache_size:
                self._result_cache.popitem(last=False)
                self._cache_evictions += 1
            if shared is not None:
                # Publish after the local insert: a racing worker putting
                # the same key appends identical bytes (determinism per
                # version), so ordering does not matter for correctness.
                if shared.put(version, canonical, body, etag):
                    self._shared_fills += 1
        return response

    def _answer_post(self, target: str, headers: Optional[Mapping[str, str]],
                     body: bytes) -> Response:
        parsed = urlsplit(target)
        path = unquote(parsed.path)
        params = parse_qs(parsed.query, keep_blank_values=True)
        parts = [part for part in path.split("/") if part]
        tail = parts[1:] if parts[:1] == ["v1"] else None
        if tail == ["ingest"]:
            _check_params(params, "ingest")
            if self.role != "leader":
                if self._ingest_proxy is not None:
                    return self._forward_ingest(target, headers, body)
                raise ApiError(403, "this node is a read-only follower; "
                                    "POST /v1/ingest on the leader")
            snapshot, skipped = self._parse_ingest_snapshot(body, params, headers)
            payload = self.ingest(snapshot)
            payload["ingested"]["skipped_rows"] = skipped
            if skipped:
                _M_INGEST_SKIPPED.inc(skipped)
        elif tail == ["query"]:
            _check_params(params, "query")
            if len(body) > MAX_BODY_BYTES:
                raise ApiError(413, f"query body exceeds {MAX_BODY_BYTES} bytes")
            payload = self.batch_query_payload(body)
        elif tail is not None and _is_get_route(tail):
            raise ApiError(405, f"method POST not allowed for {path} "
                                "(allowed: GET, HEAD)", allow="GET, HEAD")
        else:
            raise ApiError(404, f"unknown path {path!r}")
        out = json_bytes(payload)
        return Response(200, out, {
            "Content-Type": "application/json; charset=utf-8",
            "ETag": _etag_of(out),
            # The payload's version was captured under the lock that
            # produced it; re-reading here could expose a concurrent
            # writer's later version in the header of this body.
            "X-Repro-Store-Version": str(payload["store_version"]),
            "X-Repro-Cache": "miss",
        })

    def _forward_ingest(self, target: str,
                        headers: Optional[Mapping[str, str]],
                        body: bytes) -> Response:
        """Proxy one ingest to the designated writer, then catch up.

        The writer's response (status, body, ETag) passes through
        verbatim with an ``X-Repro-Forwarded`` marker; on a 2xx the
        reader immediately refreshes from disk, so the worker that
        answered the ingest serves the new day on its very next read —
        read-your-writes through the pool's shared socket.
        """
        import http.client

        parsed = urlsplit(self._ingest_proxy)
        fwd_headers = {"Content-Type": "application/json"}
        for name, value in (headers or {}).items():
            if name.lower() in ("content-type", "x-request-id"):
                fwd_headers[name.title()] = value
        _M_INGEST_FORWARDED.inc()
        try:
            conn = http.client.HTTPConnection(
                parsed.hostname, parsed.port, timeout=60)
            try:
                conn.request("POST", target, body=body, headers=fwd_headers)
                upstream = conn.getresponse()
                data = upstream.read()
                status = upstream.status
                passthrough = {
                    "Content-Type": upstream.getheader(
                        "Content-Type", "application/json; charset=utf-8"),
                }
                for name in ("ETag", "X-Repro-Store-Version"):
                    value = upstream.getheader(name)
                    if value is not None:
                        passthrough[name] = value
            finally:
                conn.close()
        except OSError as error:
            raise ApiError(503, "ingest writer unavailable: "
                                f"{type(error).__name__}") from None
        if 200 <= status < 300:
            self.refresh_from_disk()
        passthrough["X-Repro-Cache"] = "bypass"
        passthrough["X-Repro-Forwarded"] = "writer"
        return Response(status, data, passthrough)

    def _error_response(self, error: ApiError) -> Response:
        # Single chokepoint for every JSON error envelope (direct
        # errors, batch sub-errors, degraded 503s) — the chaos suite
        # asserts on this counter instead of scraping exception lists.
        _M_ERRORS.labels(code=str(error.status)).inc()
        body = json_bytes({"error": {"status": error.status,
                                     "message": str(error)}})
        headers = {
            "Content-Type": "application/json; charset=utf-8",
            "ETag": _etag_of(body),
            "X-Repro-Store-Version": str(self.store.version),
            "X-Repro-Cache": "miss",
        }
        if error.allow:
            headers["Allow"] = error.allow
        return Response(error.status, body, headers)

    def handle_request(self, target: str,
                       headers: Optional[Mapping[str, str]] = None,
                       method: str = "GET", body: bytes = b"") -> Response:
        """Answer one request (``target`` is the path with query string).

        GET/HEAD bodies are memoised per ``(store.version, canonical
        request)``; a matching ``If-None-Match`` turns the answer into an
        empty 304.  POST routes to the ingest/batch endpoints.  This
        method never raises: errors — including unexpected ones — come
        back as JSON error-envelope responses, which is what keeps the
        serving threads alive under fuzzed input.
        """
        method = method.upper()
        if faults.ACTIVE is not None:
            try:
                # Injection point "api.request": a ``slow`` rule stalls
                # admission, an ``error`` rule answers 503 — the
                # degraded-mode shape a load-shedding proxy produces —
                # without polluting ``internal_errors`` (the fault is
                # deliberate, not an escape).
                faults.ACTIVE.hit("api.request")
            except faults.InjectedFault:
                _M_DEGRADED.inc()
                obslog.log_event("api.degraded", level="warning",
                                 target=target, method=method)
                return self._error_response(ApiError(
                    503, "service degraded (injected fault)"))
        try:
            if method in ("GET", "HEAD"):
                response = self._answer_get(target)
            elif method == "POST":
                response = self._answer_post(target, headers, body)
            else:
                allow = allowed_methods(unquote(urlsplit(target).path))
                raise ApiError(405, f"method {method} not allowed "
                                    f"(allowed: {allow})", allow=allow)
        except ApiError as error:
            response = self._error_response(error)
        except Exception as error:  # noqa: BLE001 — serving must not die
            # The envelope names only the exception type: str(error) can
            # carry server-side paths (OSError file names etc.) that a
            # remote client has no business seeing.  The full exception
            # is retained on the service for operators and tests.
            self.internal_errors.append(error)
            _M_INTERNAL.inc()
            obslog.log_event("api.internal_error", level="error",
                             target=target, method=method,
                             error=type(error).__name__)
            response = self._error_response(ApiError(
                500, f"internal error ({type(error).__name__}); "
                     "detail retained server-side"))
        if_none_match = {key.lower(): value
                         for key, value in (headers or {}).items()
                         }.get("if-none-match")
        if response.status == 200 and method in ("GET", "HEAD") and if_none_match:
            if _if_none_match_hit(if_none_match, response.headers.get("ETag")):
                return Response(304, b"", dict(response.headers))
        return response


class _Handler(BaseHTTPRequestHandler):
    """Hardened HTTP adapter; all behaviour lives in :class:`QueryService`."""

    service: QueryService  # bound by create_server
    server_version = "repro-serve/1.1"
    protocol_version = "HTTP/1.1"
    #: Per-connection socket timeout, so a stalled client cannot pin a
    #: handler thread forever.
    timeout = 30
    #: TCP_NODELAY on every accepted connection.  Keep-alive clients
    #: otherwise hit the Nagle/delayed-ACK interaction: headers and body
    #: go out as two sub-MSS segments, the second waits ~40 ms for the
    #: client's delayed ACK, and a connection-reusing client measures
    #: tens of requests per second instead of thousands.  Per-request
    #: clients never noticed (their connection close flushed the tail).
    disable_nagle_algorithm = True

    #: Upper bound on an accepted POST body (413 beyond it, unread).
    _MAX_BODY = MAX_BODY_BYTES

    #: Upper bound on a discarded write-request body (keeps keep-alive
    #: connections in sync without letting a client stream gigabytes).
    _MAX_DISCARDED_BODY = 1 << 20

    def _send_service_response(self, response: Response,
                               send_body: bool = True,
                               close: bool = False) -> None:
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        if close:
            # send_header also flips close_connection for the server loop.
            self.send_header("Connection", "close")
        self.end_headers()
        if send_body:
            if faults.ACTIVE is None:
                self.wfile.write(response.body)
            else:
                try:
                    # Injection point "api.response.write": a ``torn``
                    # rule ships a body prefix, a ``drop`` rule none.
                    faults.ACTIVE.torn_write("api.response.write",
                                             self.wfile, response.body)
                except faults.InjectedFault as error:
                    # From the server's side a torn response *is* the
                    # connection dying mid-body; map it to the shape
                    # ``_guarded`` already handles as a client loss.
                    raise ConnectionResetError(str(error)) from error

    def _drain_request_body(self) -> bool:
        """Discard the body of a request whose handler won't read one.

        Any method may carry a body (a GET with ``Content-Length`` is
        unusual but legal); leaving it unread would make the server
        parse the body bytes as the *next* request line on a keep-alive
        connection.  Returns whether the connection must close instead
        (chunked or oversized framing that cannot be drained by length).
        """
        if self.headers.get("Transfer-Encoding"):
            return True
        declared = self.headers.get("Content-Length")
        if declared is None:
            return False
        try:
            length = int(declared)
        except ValueError:
            return True
        if length < 0:
            return True
        pending = min(length, self._MAX_DISCARDED_BODY)
        if pending > 0:
            self.rfile.read(pending)
        return length > self._MAX_DISCARDED_BODY

    def _send_json_error(self, status: int, message: str,
                         close: bool = False, allow: Optional[str] = None) -> None:
        """A transport-level error in the same envelope the API uses."""
        _M_ERRORS.labels(code=str(status)).inc()
        body = json_bytes({"error": {"status": status, "message": message}})
        self.send_response(status)
        if allow:
            self.send_header("Allow", allow)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if close:
            # send_header also flips close_connection, so the server loop
            # tears the socket down after this answer.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def send_error(self, code, message=None, explain=None):  # noqa: D401
        """JSON error envelope for protocol-level failures.

        ``http.server`` calls this for malformed request lines, overlong
        headers and unsupported HTTP versions, and would answer with an
        HTML page; every other error this server emits is a JSON
        envelope, so protocol errors match it — a fuzzing client always
        gets a parseable body.  The parser state is unknown at this
        point, so the connection closes.
        """
        self.close_connection = True
        if message is None:
            message = self.responses.get(code, ("unknown error",))[0] \
                if isinstance(self.responses.get(code), tuple) \
                else "unknown error"
        body = json_bytes({"error": {"status": int(code), "message": message}})
        try:
            self.send_response(int(code), message)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if (self.command != "HEAD"
                    and int(code) >= 200 and int(code) not in (204, 205, 304)):
                self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _guarded(self, answer) -> None:
        """Run ``answer()``; nothing may escape the handler thread."""
        try:
            answer()
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client went away mid-response; nothing to answer.
            self.close_connection = True
        except Exception:  # noqa: BLE001 — last-ditch: keep the thread alive
            try:
                self._send_json_error(500, "internal server error", close=True)
            except OSError:
                self.close_connection = True

    def _service_call(self, method: str = "GET", body: bytes = b"") -> Response:
        """One traced service call: the wire layer's telemetry lives here.

        A request either presents an ``X-Request-Id`` (propagated
        verbatim — this is how a leader correlates a follower's fetches)
        or gets a fresh id; the id is active (``repro.obs.tracing``)
        for the duration of the call, echoed on the response, and
        stamped into every structured log line the call emits.  Wire
        requests cost ~0.5 ms, so registry counters and a histogram
        observation are affordable here — unlike in
        :meth:`QueryService.handle_request`, which in-process callers
        hit at ~5 µs per cached read.
        """
        trace_id = self.headers.get("X-Request-Id") or tracing.new_trace_id()
        start = time.perf_counter()
        token = tracing.activate(trace_id)
        try:
            response = self.service.handle_request(
                self.path, dict(self.headers), method=method, body=body)
            duration = time.perf_counter() - start
            response.headers["X-Request-Id"] = trace_id
            _M_REQUESTS.labels(method=self.command).inc()
            _M_REQUEST_SECONDS.observe(duration)
            if obslog.enabled("debug"):
                obslog.log_event(
                    "http.request", level="debug", method=self.command,
                    path=self.path, status=response.status,
                    duration_ms=round(duration * 1000.0, 3),
                    cache=response.headers.get("X-Repro-Cache"))
            return response
        finally:
            tracing.deactivate(token)

    def _answer(self, send_body: bool) -> None:
        must_close = self._drain_request_body()
        response = self._service_call()
        self._send_service_response(response, send_body, close=must_close)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._guarded(lambda: self._answer(send_body=True))

    def do_HEAD(self) -> None:  # noqa: N802
        self._guarded(lambda: self._answer(send_body=False))

    def _read_post_body(self) -> Optional[bytes]:
        """Read a length-bounded POST body; answer the error and return
        ``None`` when the framing is unusable.

        Chunked transfer is rejected up front (before any body byte is
        read): the API's bodies are small and length-known, and a
        truncated chunk stream must never stall or desync a handler
        thread.  Oversized declarations answer 413 *without reading*,
        and a body shorter than its declaration (client hung up) is a
        400.
        """
        if self.headers.get("Transfer-Encoding"):
            self._send_json_error(
                400, "chunked transfer encoding is not supported; "
                     "send Content-Length", close=True)
            return None
        declared = self.headers.get("Content-Length")
        if declared is None:
            self._send_json_error(411, "POST requires Content-Length", close=True)
            return None
        try:
            length = int(declared)
        except ValueError:
            self._send_json_error(
                400, f"invalid Content-Length {declared!r}", close=True)
            return None
        if length < 0:
            self._send_json_error(
                400, f"invalid Content-Length {declared!r}", close=True)
            return None
        if length > self._MAX_BODY:
            self._send_json_error(
                413, f"request body exceeds {self._MAX_BODY} bytes", close=True)
            return None
        if faults.ACTIVE is not None:
            # Injection point "api.request.read": a ``drop`` rule is the
            # client vanishing mid-upload (connection-loss path), an
            # ``error`` rule a socket-level read failure (500 envelope).
            faults.ACTIVE.hit("api.request.read")
        body = self.rfile.read(length) if length else b""
        if len(body) < length:
            self._send_json_error(
                400, "request body shorter than Content-Length", close=True)
            return None
        return body

    def do_POST(self) -> None:  # noqa: N802
        def answer() -> None:
            body = self._read_post_body()
            if body is None:
                return
            response = self._service_call(method="POST", body=body)
            self._send_service_response(response)

        self._guarded(answer)

    def _method_not_allowed(self) -> None:
        """Answer an unsupported write method with 405 + ``Allow``.

        ``http.server`` responds 501 Unsupported to any method without a
        ``do_*`` handler, which tells a client the server has no idea
        what PUT *means*.  The accurate answer is 405 Method Not Allowed
        with the resource's permitted methods listed.
        """
        def answer() -> None:
            must_close = self._drain_request_body()
            allow = allowed_methods(urlsplit(self.path).path)
            self._send_json_error(
                405, f"method {self.command} not allowed "
                     f"(allowed: {allow})",
                close=must_close, allow=allow)

        self._guarded(answer)

    do_PUT = _method_not_allowed  # noqa: N815 (http.server API)
    do_DELETE = _method_not_allowed  # noqa: N815
    do_PATCH = _method_not_allowed  # noqa: N815

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep the serving process quiet; curl/tests read the bodies


class ApiHTTPServer(ThreadingHTTPServer):
    """Threaded server that records unexpected handler-thread failures.

    The handler layer is built so no client input can raise out of a
    request (``QueryService.handle_request`` never raises, transport
    errors answer JSON envelopes); :attr:`unhandled_errors` is the
    tripwire proving it — the fuzz and concurrency tests assert it
    stays empty.  Client disconnects are not failures and are ignored.
    """

    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Bounded drop-oldest trace (a tripwire, not a leak): tests
        #: assert it stays empty, long-running workers keep only the
        #: most recent failures plus a ``dropped`` count.
        self.unhandled_errors: RingLog = RingLog(UNHANDLED_ERRORS_CAPACITY)

    def handle_error(self, request, client_address) -> None:  # noqa: D102
        error = sys.exc_info()[1]
        if isinstance(error, (ConnectionError, TimeoutError)):
            return
        self.unhandled_errors.append(error)
        _M_UNHANDLED.inc()
        obslog.log_event("http.unhandled_error", level="error",
                         client=str(client_address),
                         error=type(error).__name__ if error else None)


def create_server(service: QueryService, host: str = "127.0.0.1",
                  port: int = 0, server_class: Optional[type] = None,
                  listen_socket=None) -> ApiHTTPServer:
    """A ready-to-run threaded HTTP server bound to ``service``.

    ``port=0`` picks a free port (``server.server_address[1]``); call
    ``serve_forever()`` to run and ``shutdown()`` to stop.  The returned
    server exposes ``unhandled_errors`` (see :class:`ApiHTTPServer`).

    ``listen_socket`` adopts an already-bound, already-listening socket
    instead of binding a fresh one — the pre-fork worker pool's path: the
    parent binds once, every forked worker builds its server around the
    inherited file descriptor, and the kernel load-balances accepts
    across the workers' accept loops.  ``server_class`` substitutes an
    :class:`ApiHTTPServer` subclass (the pool's crash-to-exit wrapper).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    cls = server_class or ApiHTTPServer
    if listen_socket is None:
        return cls((host, port), handler)
    server = cls(listen_socket.getsockname()[:2], handler,
                 bind_and_activate=False)
    # Adopt the shared socket: close the unbound one the constructor
    # made, skip server_bind/server_activate entirely (the parent
    # already bound and listened), and fix up the address fields those
    # steps would have filled in.
    server.socket.close()
    server.socket = listen_socket
    server.server_address = listen_socket.getsockname()[:2]
    host, port = server.server_address
    server.server_name = host
    server.server_port = port
    return server
