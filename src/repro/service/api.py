"""Deterministic JSON query API over a stored archive corpus.

:class:`QueryService` binds an :class:`~repro.service.store.ArchiveStore`
to the analysis library and answers the ``/v1`` endpoints:

========================================  =====================================
``/v1/meta``                              store/version/provider inventory
``/v1/domains/{name}/history``            per-provider rank history, longevity,
                                          days-in-top-k (``providers=``,
                                          ``start=``, ``end=``, ``top_k=``)
``/v1/providers/{p}/stability``           the Section-6.1 stability battery
                                          (``top_n=``)
``/v1/scenarios/{profile}/report``        the stored scenario report document
``/v1/compare``                           daily cross-list intersections
                                          (``providers=a,b``, ``top_n=``)
========================================  =====================================

Every payload is built from the same :mod:`repro.core` /
:mod:`repro.scenarios` calls a library user would make directly, floats
pass through :func:`repro.scenarios.runner.canonical_float`, and
serialisation is canonical JSON (sorted keys, two-space indent, trailing
newline) — so an endpoint's bytes are *identical* to computing the answer
in-process (asserted in ``tests/test_service_api.py``).

Responses carry a strong ETag (SHA-256 of the body) and honour
``If-None-Match``; bodies are memoised in a bounded LRU keyed on
``(store.version, canonical request)``, so a mutation-free store serves
repeated queries from memory and any append invalidates everything at
once.  The HTTP layer is a thin stdlib ``http.server`` wrapper
(:func:`create_server`); all logic lives in the transport-free
:meth:`QueryService.handle_request`, which the CLI, tests and benchmarks
call directly.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Optional, Sequence
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.intersection import intersection_over_time
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.providers.base import ListArchive
from repro.scenarios.runner import canonical_float as _f
from repro.service.index import DomainIndex
from repro.service.store import ArchiveStore, StoreError

#: Default bound of the per-service response LRU.
DEFAULT_CACHE_SIZE = 256


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Response:
    """One materialised API response (transport-independent)."""

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def etag(self) -> Optional[str]:
        return self.headers.get("ETag")

    def json(self) -> Any:
        """The decoded body (test/CLI convenience)."""
        return json.loads(self.body.decode("utf-8"))


def json_bytes(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, indent 2, trailing newline.

    The one serialisation used for every payload — identical to
    :meth:`repro.scenarios.runner.ScenarioReport.to_json`.
    """
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _etag_of(body: bytes) -> str:
    return '"' + hashlib.sha256(body).hexdigest() + '"'


def _parse_date(params: Mapping[str, list[str]], name: str) -> Optional[dt.date]:
    values = params.get(name)
    if not values:
        return None
    try:
        return dt.date.fromisoformat(values[-1])
    except ValueError:
        raise ApiError(400, f"{name} must be an ISO date (got {values[-1]!r})") from None


def _parse_positive_int(params: Mapping[str, list[str]], name: str) -> Optional[int]:
    values = params.get(name)
    if not values:
        return None
    try:
        value = int(values[-1])
    except ValueError:
        raise ApiError(400, f"{name} must be an integer (got {values[-1]!r})") from None
    if value <= 0:
        raise ApiError(400, f"{name} must be positive (got {value})")
    return value


def _parse_providers(params: Mapping[str, list[str]]) -> Optional[list[str]]:
    values = params.get("providers")
    if not values:
        return None
    names = [name.strip() for chunk in values for name in chunk.split(",")]
    names = [name for name in names if name]
    if not names:
        raise ApiError(400, "providers must name at least one provider")
    return names


class QueryService:
    """Query layer over one archive store (transport-free)."""

    def __init__(self, store: ArchiveStore,
                 cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self.store = store
        self.cache_size = cache_size
        self._result_cache: OrderedDict[tuple[int, str], Response] = OrderedDict()
        self._archives: dict[str, ListArchive] = {}
        self._index = DomainIndex()
        self._loaded_version: Optional[int] = None
        # Serves under ThreadingHTTPServer: one lock guards the LRU and
        # the materialised archives/index against concurrent requests.
        self._lock = threading.RLock()

    # -- materialised state ----------------------------------------------
    def _refresh(self) -> None:
        """Catch the materialised archives/index up with the store.

        Keyed on the store's *data* version, so report saves don't force
        a reload; new snapshots of an already-loaded provider are applied
        incrementally (``archive.add`` + ``index.add``) instead of
        re-replaying the whole corpus.
        """
        with self._lock:
            if self._loaded_version == self.store.data_version:
                return
            for provider in self.store.providers():
                archive = self._archives.get(provider)
                if archive is None:
                    archive = self.store.load_archive(provider)
                    self._archives[provider] = archive
                    self._index.add_archive(archive)
                    continue
                last_loaded = archive.dates()[-1] if len(archive) else None
                if last_loaded == self.store.dates(provider)[-1]:
                    continue
                # One linear pass over the provider's shards for the tail
                # (load_snapshot per day would re-decode the shard prefix
                # per new day).
                for snapshot in self.store.iter_snapshots(provider):
                    if last_loaded is None or snapshot.date > last_loaded:
                        archive.add(snapshot)
                        self._index.add(snapshot)
            self._loaded_version = self.store.data_version

    def providers(self) -> tuple[str, ...]:
        self._refresh()
        return tuple(sorted(self._archives))

    def archive(self, provider: str) -> ListArchive:
        self._refresh()
        try:
            return self._archives[provider]
        except KeyError:
            known = ", ".join(sorted(self._archives)) or "none"
            raise ApiError(404, f"unknown provider {provider!r} "
                                f"(stored: {known})") from None

    @property
    def index(self) -> DomainIndex:
        self._refresh()
        return self._index

    def clear_cache(self) -> None:
        """Drop memoised responses (benchmarks' cold-path switch)."""
        with self._lock:
            self._result_cache.clear()

    # -- payload builders (pure, deterministic) ---------------------------
    def meta_payload(self) -> dict[str, Any]:
        """Store inventory: providers, date ranges, stored reports."""
        self._refresh()
        providers: dict[str, Any] = {}
        for name in sorted(self._archives):
            archive = self._archives[name]
            days = len(archive)
            latest = archive[days - 1] if days else None
            providers[name] = {
                "days": days,
                "first_date": archive[0].date.isoformat() if days else None,
                "last_date": latest.date.isoformat() if latest else None,
                "list_size": len(archive[0]) if days else 0,
                "domains_indexed": self.index.domain_count(name),
                "top_domain": latest.entries[0] if latest and latest.entries else None,
            }
        return {
            "service": "repro-serve",
            "store_version": self.store.version,
            "providers": providers,
            "reports": list(self.store.report_names()),
        }

    def domain_history_payload(self, domain: str,
                               providers: Optional[Sequence[str]] = None,
                               start: Optional[dt.date] = None,
                               end: Optional[dt.date] = None,
                               top_k: Optional[int] = None) -> dict[str, Any]:
        """Rank history + longevity of one domain across providers.

        Answered entirely from the :class:`DomainIndex`; byte-identical
        to scanning the archives directly (the parity tests do exactly
        that).
        """
        name = domain.strip().lower().rstrip(".")
        if not name:
            raise ApiError(400, "domain must be non-empty")
        selected = list(providers) if providers is not None else list(self.providers())
        index = self.index
        sections: dict[str, Any] = {}
        for provider in selected:
            if provider not in self._archives:
                raise ApiError(404, f"unknown provider {provider!r}")
            observations = index.history(name, provider, start=start, end=end)
            longevity = index.longevity(name, provider)
            section: dict[str, Any] = {
                "observations": [{"date": date.isoformat(), "rank": rank}
                                 for date, rank in observations],
                "days_listed": longevity.days_listed,
                "first_seen": (longevity.first_seen.isoformat()
                               if longevity.first_seen else None),
                "last_seen": (longevity.last_seen.isoformat()
                              if longevity.last_seen else None),
                "best_rank": min((r for _, r in observations), default=None),
                "worst_rank": max((r for _, r in observations), default=None),
            }
            if top_k is not None:
                section["days_in_top_k"] = index.days_in_top_k(name, provider, top_k)
            sections[provider] = section
        payload: dict[str, Any] = {"domain": name, "providers": sections}
        if start is not None:
            payload["start"] = start.isoformat()
        if end is not None:
            payload["end"] = end.isoformat()
        if top_k is not None:
            payload["top_k"] = top_k
        return payload

    def provider_stability_payload(self, provider: str,
                                   top_n: Optional[int] = None) -> dict[str, Any]:
        """The Section-6.1 stability battery for one provider's archive."""
        archive = self.archive(provider)
        changes = daily_changes(archive, top_n)
        mean_change = mean_daily_change(archive, top_n)
        new_counts = new_domains_per_day(archive, top_n)
        cumulative = cumulative_unique_domains(archive, top_n)
        counts = days_in_list(archive, top_n)
        always = (sum(1 for v in counts.values() if v == len(archive)) / len(counts)
                  if counts else 0.0)
        decay = intersection_with_reference(archive, reference_days=range(7),
                                            top_n=top_n)
        list_size = len(archive[0]) if len(archive) else 0
        head = list_size if top_n is None else min(top_n, list_size)
        return {
            "provider": provider,
            "top_n": top_n,
            "days": len(archive),
            "list_size": list_size,
            "mean_daily_change": _f(mean_change),
            "churn_fraction": _f(mean_change / max(1, head)),
            "daily_changes": {date.isoformat(): count
                              for date, count in sorted(changes.items())},
            "new_per_day": {date.isoformat(): count
                            for date, count in sorted(new_counts.items())},
            "cumulative_unique": {date.isoformat(): count
                                  for date, count in sorted(cumulative.items())},
            "distinct_domains": len(counts),
            "always_listed_share": _f(always),
            "reference_decay": {str(offset): _f(value)
                                for offset, value in sorted(decay.items())},
        }

    def compare_payload(self, providers: Optional[Sequence[str]] = None,
                        top_n: Optional[int] = None) -> dict[str, Any]:
        """Daily pairwise/three-way base-domain intersections (Figure 1a)."""
        names = sorted(providers) if providers else list(self.providers())
        if len(names) < 2:
            raise ApiError(400, "compare needs at least two providers")
        if len(names) != len(set(names)):
            raise ApiError(400, "compare providers must be distinct")
        archives = {name: self.archive(name) for name in names}
        series = intersection_over_time(archives, top_n=top_n)
        per_pair: dict[str, list[int]] = {}
        daily: dict[str, dict[str, int]] = {}
        for date, matrix in series.items():
            row = {"&".join(pair): count for pair, count in matrix.items()}
            daily[date.isoformat()] = row
            for pair, count in row.items():
                per_pair.setdefault(pair, []).append(count)
        return {
            "providers": names,
            "top_n": top_n,
            "days": len(series),
            "pairs": {
                pair: {"mean": _f(sum(counts) / len(counts)),
                       "min": min(counts), "max": max(counts)}
                for pair, counts in sorted(per_pair.items())
            },
            "series": daily,
        }

    def scenario_report_bytes(self, profile: str) -> bytes:
        """The stored scenario report document (exact persisted bytes)."""
        try:
            return self.store.load_report_bytes(profile)
        except StoreError:
            # The store rejects path-escaping profile names before lookup.
            raise ApiError(400, f"invalid profile name {profile!r}") from None
        except KeyError:
            stored = ", ".join(self.store.report_names()) or "none"
            raise ApiError(404, f"no stored report for profile {profile!r} "
                                f"(stored: {stored})") from None

    # -- request handling -------------------------------------------------
    def _route(self, path: str, params: Mapping[str, list[str]]) -> bytes:
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "v1":
            raise ApiError(404, f"unknown path {path!r} (endpoints live under /v1)")
        tail = parts[1:]
        if tail == ["meta"]:
            return json_bytes(self.meta_payload())
        if len(tail) == 3 and tail[0] == "domains" and tail[2] == "history":
            return json_bytes(self.domain_history_payload(
                tail[1],
                providers=_parse_providers(params),
                start=_parse_date(params, "start"),
                end=_parse_date(params, "end"),
                top_k=_parse_positive_int(params, "top_k")))
        if len(tail) == 3 and tail[0] == "providers" and tail[2] == "stability":
            return json_bytes(self.provider_stability_payload(
                tail[1], top_n=_parse_positive_int(params, "top_n")))
        if len(tail) == 3 and tail[0] == "scenarios" and tail[2] == "report":
            return self.scenario_report_bytes(tail[1])
        if tail == ["compare"]:
            return json_bytes(self.compare_payload(
                providers=_parse_providers(params),
                top_n=_parse_positive_int(params, "top_n")))
        raise ApiError(404, f"unknown path {path!r}")

    def handle_request(self, target: str,
                       headers: Optional[Mapping[str, str]] = None) -> Response:
        """Answer one GET request (``target`` is the path with query string).

        Successful bodies are memoised per ``(store.version, canonical
        request)``; a matching ``If-None-Match`` turns the answer into an
        empty 304.
        """
        parsed = urlsplit(target)
        path = unquote(parsed.path)
        params = parse_qs(parsed.query)
        canonical = path + "?" + "&".join(
            f"{key}={','.join(values)}" for key, values in sorted(params.items()))
        cache_key = (self.store.version, canonical)
        with self._lock:
            cached = self._result_cache.get(cache_key)
            if cached is not None:
                self._result_cache.move_to_end(cache_key)
        if cached is not None:
            response = Response(cached.status, cached.body,
                                dict(cached.headers))
            response.headers["X-Repro-Cache"] = "hit"
        else:
            try:
                # Misses compute under the lock: the builders share the
                # archives' mutable analysis caches with _refresh.
                with self._lock:
                    body = self._route(path, params)
                status = 200
            except ApiError as error:
                body = json_bytes({"error": {"status": error.status,
                                             "message": str(error)}})
                status = error.status
            response = Response(status, body, {
                "Content-Type": "application/json; charset=utf-8",
                "ETag": _etag_of(body),
                "X-Repro-Store-Version": str(self.store.version),
                "X-Repro-Cache": "miss",
            })
            if status == 200:
                # Payloads are deterministic, so two threads racing to
                # fill the same key store identical bodies.
                with self._lock:
                    self._result_cache[cache_key] = Response(
                        status, body, dict(response.headers))
                    while len(self._result_cache) > self.cache_size:
                        self._result_cache.popitem(last=False)
        if_none_match = {key.lower(): value
                         for key, value in (headers or {}).items()
                         }.get("if-none-match")
        if response.status == 200 and if_none_match:
            tags = {tag.strip() for tag in if_none_match.split(",")}
            if "*" in tags or response.headers.get("ETag") in tags:
                return Response(304, b"", dict(response.headers))
        return response


class _Handler(BaseHTTPRequestHandler):
    """Minimal HTTP adapter; all behaviour lives in :class:`QueryService`."""

    service: QueryService  # bound by create_server
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    #: The API is read-only; advertised on 405 responses per RFC 9110.
    _ALLOWED_METHODS = "GET, HEAD"

    #: Upper bound on a discarded write-request body (keeps keep-alive
    #: connections in sync without letting a client stream gigabytes).
    _MAX_DISCARDED_BODY = 1 << 20

    def _answer(self, send_body: bool) -> None:
        response = self.service.handle_request(self.path, dict(self.headers))
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if send_body:
            self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._answer(send_body=True)

    def do_HEAD(self) -> None:  # noqa: N802
        self._answer(send_body=False)

    def _method_not_allowed(self) -> None:
        """Answer a write method with 405 + ``Allow`` instead of 501.

        ``http.server`` responds 501 Unsupported to any method without a
        ``do_*`` handler, which tells a client the server has no idea
        what POST *means*.  The accurate answer for a read-only resource
        is 405 Method Not Allowed with the permitted methods listed.
        """
        declared = self.headers.get("Content-Length")
        must_close = False
        if self.headers.get("Transfer-Encoding"):
            # A chunked body cannot be drained by length; give up on the
            # connection rather than parse body bytes as the next request.
            must_close = True
        elif declared is not None:
            try:
                length = int(declared)
            except ValueError:
                length = 0
                must_close = True
            pending = min(length, self._MAX_DISCARDED_BODY)
            if pending > 0:
                # Drain the request body so a keep-alive connection is
                # left at a message boundary.
                self.rfile.read(pending)
            if length > self._MAX_DISCARDED_BODY:
                must_close = True
        body = json_bytes({"error": {
            "status": 405,
            "message": (f"method {self.command} not allowed: this API is "
                        f"read-only (allowed: {self._ALLOWED_METHODS})")}})
        self.send_response(405)
        self.send_header("Allow", self._ALLOWED_METHODS)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if must_close:
            # Advertise the close; send_header also flips close_connection
            # so the server loop tears the socket down after this answer.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    do_POST = _method_not_allowed  # noqa: N815 (http.server API)
    do_PUT = _method_not_allowed  # noqa: N815
    do_DELETE = _method_not_allowed  # noqa: N815
    do_PATCH = _method_not_allowed  # noqa: N815

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep the serving process quiet; curl/tests read the bodies


def create_server(service: QueryService, host: str = "127.0.0.1",
                  port: int = 0) -> ThreadingHTTPServer:
    """A ready-to-run threaded HTTP server bound to ``service``.

    ``port=0`` picks a free port (``server.server_address[1]``); call
    ``serve_forever()`` to run and ``shutdown()`` to stop.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)
