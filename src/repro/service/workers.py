"""Pre-fork worker pool: N read processes, one writer, one store.

A single :class:`~repro.service.api.ApiHTTPServer` is a threaded server
under the GIL: every request — routing, canonical-JSON encoding,
SHA-256 ETags — competes for one interpreter lock, so a busy read
workload saturates one core no matter how many threads accept.  This
module scales the same service across *processes* the classic pre-fork
way:

* The **parent** binds the public listening socket once, then forks
  ``workers`` read-only children.  Each child builds its server around
  the inherited file descriptor (``create_server(listen_socket=...)``)
  and runs an ordinary accept loop; the kernel load-balances incoming
  connections across the children's concurrent ``accept(2)`` calls.
* One designated **writer** process owns the read-write
  :class:`~repro.service.store.ArchiveStore` and with it ``POST
  /v1/ingest``.  It listens on a private port; read workers answer
  ingest POSTs by *forwarding* them to the writer
  (:meth:`QueryService.set_ingest_proxy`) and re-reading the store on
  success, so clients keep one public endpoint and read-your-writes.
* Read workers open the store **read-only, mmap'd** — the table and
  shard pages are shared through the OS page cache, so N workers cost
  roughly one copy of the data in memory — and discover the writer's
  published versions by tailing the on-disk manifest with a
  :class:`~repro.service.replica.StoreTailer` thread: the same
  incremental ``extend_base_id_sets`` + ``DomainIndex.add`` adoption
  path a network follower uses, with the poll interval as the measured
  staleness bound.
* Rendered payloads are shared through a
  :class:`~repro.service.shared_cache.SharedPayloadCache` segment: a
  body any worker renders for ``(store.version, target)`` serves
  byte-identically (same ETag) from every other worker without
  re-rendering.

The parent supervises: a crashed or killed child is respawned into the
same slot (the listen sockets live in the parent, so the replacement
adopts the very same ports), ``SIGTERM`` drains every child
gracefully, and a small **control endpoint** aggregates the per-worker
``/v1/metrics`` scrapes into one exposition
(:func:`repro.obs.metrics.aggregate_expositions`) that
``parse_exposition`` reads like any single-process render.

POSIX-only (``os.fork``); the single-process ``repro-serve serve``
path remains the portable default.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Optional

from repro import faults
from repro.obs import logging as obslog
from repro.obs.metrics import aggregate_expositions
from repro.service.api import ApiHTTPServer, QueryService, create_server
from repro.service.replica import StoreTailer
from repro.service.shared_cache import DEFAULT_MAX_BYTES, SharedPayloadCache
from repro.service.store import ArchiveStore

__all__ = [
    "CRASH_EXIT_CODE",
    "CrashExitServer",
    "WorkerPool",
    "WorkerSlot",
]

#: Exit status a worker dies with when an injected crash fires inside a
#: request thread.  Distinct from 0 (drain) and 1 (setup failure) so the
#: supervisor's restart log — and the chaos tests — can tell a simulated
#: process death from everything else.
CRASH_EXIT_CODE = 70

#: How long :meth:`WorkerPool.stop` waits for SIGTERM'd children before
#: escalating to SIGKILL.
DEFAULT_GRACE_SECONDS = 5.0


class CrashExitServer(ApiHTTPServer):
    """An :class:`ApiHTTPServer` where an injected crash kills the process.

    :class:`~repro.faults.InjectedCrash` is a ``BaseException`` that
    means *the process died here*.  In a single-process test harness it
    unwinds to the test, which reopens the store.  In a forked worker
    there is no harness above the accept loop — a crash escaping into a
    daemon request thread would just kill that thread and leave a
    half-dead worker serving.  This subclass completes the simulation:
    the worker exits with :data:`CRASH_EXIT_CODE` (taking its torn store
    state with it to disk), and the pool parent's supervisor respawns
    it through the real recovery path.
    """

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        except BaseException as error:  # noqa: BLE001 — crash passthrough
            if faults.is_crash(error):
                os._exit(CRASH_EXIT_CODE)
            raise


class WorkerSlot:
    """One supervised child position: role, private socket, current pid."""

    def __init__(self, role: str, index: int, sock: socket.socket) -> None:
        self.role = role          # "writer" | "reader"
        self.index = index
        self.sock = sock          # private per-slot listen socket
        self.port: int = sock.getsockname()[1]
        self.pid: Optional[int] = None
        self.restarts = 0
        self.last_exit: Optional[int] = None

    @property
    def name(self) -> str:
        return f"{self.role}-{self.index}"

    def describe(self) -> dict[str, Any]:
        return {"role": self.role, "index": self.index, "name": self.name,
                "pid": self.pid, "port": self.port,
                "restarts": self.restarts, "last_exit": self.last_exit}


def _http_get(port: int, path: str, host: str = "127.0.0.1",
              timeout: float = 2.0) -> tuple[int, bytes]:
    """One GET against a worker's private port; raises ``OSError`` kin."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class WorkerPool:
    """Parent-side controller for the pre-fork serving pool.

    ``start()`` binds every socket, forks the writer and ``workers``
    readers, begins supervision and the control endpoint, and blocks
    until every child answers its readiness probe.  ``stop()`` drains.
    Usable as a context manager::

        with WorkerPool(store_dir, workers=4) as pool:
            url = f"http://127.0.0.1:{pool.port}/v1/meta"

    ``worker_init`` (if given) runs *inside each child* right after the
    fork, with ``(role, index)`` — the chaos tests use it to install a
    seeded :class:`~repro.faults.FaultPlan` in exactly one process.
    """

    def __init__(self, store_dir: str | Path, *, workers: int = 4,
                 host: str = "127.0.0.1", port: int = 0,
                 cache_path: Optional[str | Path] = None,
                 cache_max_bytes: int = DEFAULT_MAX_BYTES,
                 poll_interval: float = 0.05,
                 max_staleness: int = 0,
                 control: bool = True,
                 ready_file: Optional[str | Path] = None,
                 worker_init: Optional[Callable[[str, int], None]] = None,
                 event_loop: bool = False,
                 ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise RuntimeError("WorkerPool requires os.fork (POSIX)")
        self.store_dir = Path(store_dir)
        self.workers = workers
        #: Readers run the selectors event loop instead of a thread per
        #: connection (the writer stays threaded — ingests are rare and
        #: benefit from request threads).
        self.event_loop = event_loop
        self.host = host
        self._requested_port = port
        self.cache_path = (Path(cache_path) if cache_path is not None
                           else self.store_dir / "payload_cache.bin")
        self.cache_max_bytes = cache_max_bytes
        self.poll_interval = poll_interval
        self.max_staleness = max_staleness
        self._control_enabled = control
        self.ready_file = Path(ready_file) if ready_file is not None else None
        self.worker_init = worker_init

        self.port: Optional[int] = None
        self.control_port: Optional[int] = None
        self.writer_port: Optional[int] = None
        self._listen_sock: Optional[socket.socket] = None
        self._slots: list[WorkerSlot] = []
        self._by_pid: dict[int, WorkerSlot] = {}
        self._slot_lock = threading.Lock()
        self._stopping = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._control_server: Optional[ThreadingHTTPServer] = None
        self._control_thread: Optional[threading.Thread] = None
        self._started = False

    # -- lifecycle --------------------------------------------------------
    def start(self, ready_timeout: float = 30.0) -> "WorkerPool":
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        # The writer child opens read-write; readers open read-only and
        # need a manifest to exist.  Materialise an empty store up front
        # so a pool over a fresh directory boots (first ingest fills it).
        with ArchiveStore(self.store_dir):
            pass
        self.cache_path.touch(exist_ok=True)

        self._listen_sock = socket.create_server(
            (self.host, self._requested_port), backlog=128)
        self.port = self._listen_sock.getsockname()[1]

        writer_slot = WorkerSlot(
            "writer", 0, socket.create_server((self.host, 0), backlog=64))
        self.writer_port = writer_slot.port
        self._slots = [writer_slot] + [
            WorkerSlot("reader", i,
                       socket.create_server((self.host, 0), backlog=64))
            for i in range(self.workers)]
        # Fork before any parent thread exists: the children must not
        # inherit a lock some sibling thread holds mid-acquire.
        for slot in self._slots:
            self._spawn(slot)

        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True)
        self._supervisor.start()
        if self._control_enabled:
            self._start_control()
        try:
            self.wait_ready(ready_timeout)
        except Exception:
            self.stop()
            raise
        if self.ready_file is not None:
            self.ready_file.write_text(
                json.dumps(self.describe(), indent=2) + "\n",
                encoding="utf-8")
        obslog.log_event("pool.start", store=str(self.store_dir),
                         port=self.port, writer_port=self.writer_port,
                         control_port=self.control_port,
                         workers=self.workers)
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self, grace: float = DEFAULT_GRACE_SECONDS) -> None:
        """Drain: SIGTERM every child, SIGKILL stragglers, close sockets."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        with self._slot_lock:
            pids = [slot.pid for slot in self._slots if slot.pid is not None]
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + grace
        remaining = set(pids)
        while remaining and time.monotonic() < deadline:
            for pid in list(remaining):
                try:
                    done, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid  # supervisor thread reaped it first
                if done:
                    remaining.discard(pid)
            if remaining:
                time.sleep(0.02)
        for pid in remaining:  # pragma: no cover - drain timeout path
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        if self._supervisor is not None:
            self._supervisor.join(timeout=grace)
        if self._control_server is not None:
            self._control_server.shutdown()
            if self._control_thread is not None:
                self._control_thread.join(timeout=grace)
            self._control_server.server_close()
        for slot in self._slots:
            slot.sock.close()
        if self._listen_sock is not None:
            self._listen_sock.close()
        if self.ready_file is not None:
            try:
                self.ready_file.unlink()
            except OSError:
                pass
        obslog.log_event("pool.stop", port=self.port)

    # -- forking ----------------------------------------------------------
    def _spawn(self, slot: WorkerSlot) -> None:
        pid = os.fork()
        if pid == 0:
            # Child: never return into the parent's stack.  Any failure
            # below exits the process; the supervisor respawns.
            try:
                self._child_main(slot)
                os._exit(0)
            except BaseException as error:  # noqa: BLE001 — child boundary
                if faults.is_crash(error):
                    os._exit(CRASH_EXIT_CODE)
                try:
                    sys.stderr.write(
                        f"worker {slot.name} died in setup: "
                        f"{type(error).__name__}: {error}\n")
                except OSError:
                    pass
                os._exit(1)
        slot.pid = pid
        with self._slot_lock:
            self._by_pid[pid] = slot

    def _supervise(self) -> None:
        """Reap dead children; respawn them into their slots.

        Waits on this pool's pids specifically — never ``waitpid(-1)``,
        which would steal child exits belonging to the embedding
        process (another pool, a test's subprocesses).
        """
        while not self._stopping.is_set():
            with self._slot_lock:
                pids = list(self._by_pid)
            reaped: list[tuple[int, Optional[int]]] = []
            for pid in pids:
                try:
                    done, status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done, status = pid, None  # reaped by stop()
                if done:
                    reaped.append((pid, status))
            if not reaped:
                self._stopping.wait(0.05)
                continue
            for pid, status in reaped:
                with self._slot_lock:
                    slot = self._by_pid.pop(pid, None)
                if slot is None or self._stopping.is_set():
                    continue
                code = (None if status is None
                        else os.waitstatus_to_exitcode(status))
                slot.last_exit = code
                slot.restarts += 1
                slot.pid = None
                obslog.log_event("pool.worker_exit", level="warning",
                                 worker=slot.name, exit=code,
                                 restarts=slot.restarts)
                self._spawn(slot)

    # -- child side -------------------------------------------------------
    def _child_main(self, slot: WorkerSlot) -> None:
        """Everything a worker process runs (called right after fork)."""
        # Hygiene: drop inherited fds this worker does not serve, so a
        # killed sibling's port is not silently held open by survivors
        # (the parent keeps the canonical copy for respawn).
        for other in self._slots:
            if other is not slot:
                other.sock.close()
        if self._control_server is not None:  # respawn after control start
            self._control_server.socket.close()
        if slot.role == "writer" and self._listen_sock is not None:
            self._listen_sock.close()

        if self.worker_init is not None:
            self.worker_init(slot.role, slot.index)

        if slot.role == "writer":
            store = ArchiveStore(self.store_dir)
            service = QueryService(store, role="leader")
        else:
            store = ArchiveStore(self.store_dir, create=False,
                                 read_only=True)
            service = QueryService(store, role="reader")
            service.set_ingest_proxy(
                f"http://{self.host}:{self.writer_port}")
        service.attach_shared_cache(
            SharedPayloadCache(self.cache_path, self.cache_max_bytes))

        stop = threading.Event()
        threads: list[threading.Thread] = []
        if slot.role == "reader":
            tailer = StoreTailer(service, max_staleness=self.max_staleness)
            service.attach_replica(tailer)
            thread = threading.Thread(
                target=tailer.run, args=(stop, self.poll_interval),
                name="store-tailer", daemon=True)
            thread.start()
            threads.append(thread)

        if slot.role == "reader" and self.event_loop:
            from repro.service.eventloop import EventLoopServer

            def make_server(listen_socket: socket.socket) -> Any:
                return EventLoopServer(service, listen_socket=listen_socket,
                                       crash_exit_code=CRASH_EXIT_CODE)
        else:
            def make_server(listen_socket: socket.socket) -> Any:
                return create_server(service, listen_socket=listen_socket,
                                     server_class=CrashExitServer)

        servers = [make_server(slot.sock)]
        if slot.role == "reader":
            servers.append(make_server(self._listen_sock))

        def drain() -> None:
            stop.set()
            for server in servers:
                server.shutdown()
            # In-flight requests run on daemon threads; give them a
            # beat to flush their responses before the process goes.
            time.sleep(0.1)
            store.close()
            os._exit(0)

        def on_term(signum: int, frame: object) -> None:
            # shutdown() blocks until serve_forever() exits — which is
            # this very thread — so drain from a helper thread.
            threading.Thread(target=drain, daemon=True).start()

        signal.signal(signal.SIGTERM, on_term)
        obslog.log_event("pool.worker_start", worker=slot.name,
                         pid=os.getpid(), port=slot.port,
                         role=service.role)
        for server in servers[1:]:
            thread = threading.Thread(target=server.serve_forever,
                                      name="public-accept", daemon=True)
            thread.start()
            threads.append(thread)
        servers[0].serve_forever()

    # -- parent-side observability ---------------------------------------
    def describe(self) -> dict[str, Any]:
        with self._slot_lock:
            workers = [slot.describe() for slot in self._slots]
        return {
            "host": self.host,
            "port": self.port,
            "writer_port": self.writer_port,
            "control_port": self.control_port,
            "cache_path": str(self.cache_path),
            "event_loop": self.event_loop,
            "poll_interval": self.poll_interval,
            "restarts": sum(w["restarts"] for w in workers),
            "workers": workers,
        }

    def worker_pids(self, role: Optional[str] = None) -> list[int]:
        with self._slot_lock:
            return [slot.pid for slot in self._slots
                    if slot.pid is not None
                    and (role is None or slot.role == role)]

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker answers ``/v1/ready`` with 200."""
        deadline = time.monotonic() + timeout
        pending = list(self._slots)
        while pending:
            still = []
            for slot in pending:
                try:
                    status, _ = _http_get(slot.port, "/v1/ready",
                                          self.host, timeout=1.0)
                except OSError:
                    status = None
                if status != 200:
                    still.append(slot)
            pending = still
            if not pending:
                return
            if time.monotonic() >= deadline:
                names = ", ".join(slot.name for slot in pending)
                raise TimeoutError(
                    f"workers not ready after {timeout:.1f}s: {names}")
            time.sleep(0.05)

    def metrics_text(self, timeout: float = 2.0) -> str:
        """Aggregated exposition across every scrapeable worker.

        Workers mid-respawn are skipped — the aggregate is what the
        pool can prove *right now* — and the parent adds its own
        supervision families on top.
        """
        texts: list[str] = []
        with self._slot_lock:
            slots = list(self._slots)
        scraped = 0
        for slot in slots:
            if slot.pid is None:
                continue
            try:
                status, body = _http_get(slot.port, "/v1/metrics",
                                         self.host, timeout=timeout)
            except OSError:
                continue
            if status == 200:
                texts.append(body.decode("utf-8"))
                scraped += 1
        restarts = sum(slot.restarts for slot in slots)
        texts.append(
            "# HELP repro_pool_workers_scraped Workers answering the last"
            " aggregated scrape.\n"
            "# TYPE repro_pool_workers_scraped gauge\n"
            f"repro_pool_workers_scraped {scraped}\n"
            "# HELP repro_pool_worker_restarts_total Workers respawned by"
            " the pool supervisor.\n"
            "# TYPE repro_pool_worker_restarts_total counter\n"
            f"repro_pool_worker_restarts_total {restarts}\n")
        return aggregate_expositions(texts)

    # -- control endpoint -------------------------------------------------
    def _start_control(self) -> None:
        pool = self

        class _ControlHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            disable_nagle_algorithm = True

            def _reply(self, status: int, body: bytes,
                       content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path == "/v1/metrics":
                    body = pool.metrics_text().encode("utf-8")
                    self._reply(200, body,
                                "text/plain; version=0.0.4; charset=utf-8")
                elif self.path in ("/v1/pool", "/v1/health"):
                    body = (json.dumps(pool.describe(), indent=2) + "\n"
                            ).encode("utf-8")
                    self._reply(200, body, "application/json")
                else:
                    body = (json.dumps({"error": {
                        "status": 404, "message": "unknown control path",
                        "paths": ["/v1/metrics", "/v1/pool"]}}) + "\n"
                        ).encode("utf-8")
                    self._reply(404, body, "application/json")

            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass

        server = ThreadingHTTPServer((self.host, 0), _ControlHandler)
        server.daemon_threads = True
        self._control_server = server
        self.control_port = server.server_address[1]
        self._control_thread = threading.Thread(
            target=server.serve_forever, name="pool-control", daemon=True)
        self._control_thread.start()
