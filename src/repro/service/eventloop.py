"""``selectors``/epoll event-loop HTTP server for read workers.

The threaded server (:func:`repro.service.api.create_server`) costs one
thread per live connection.  That is the right trade for a handful of
clients, but a pool front-ending thousands of *mostly idle* keep-alive
connections (monitoring agents, balancer back-links, long-polling
clients) pays a thread stack and a scheduler entry for every socket
that is doing nothing.  This module serves the same
:class:`~repro.service.api.QueryService` contract from a single
non-blocking event loop: an idle connection costs one registered file
descriptor and a ~200-byte state object, nothing else.

Wire semantics are the *same contract* the threaded layer locks down in
``tests/test_service_keepalive.py`` and ``tests/test_service_fuzz.py``
(the event-loop parity suites re-run those classes against this
server):

* clean client errors (404/400/405-without-body) answer inside the
  persistent connection; protocol failures (chunked, missing/oversized/
  short ``Content-Length``) answer with ``Connection: close``;
* malformed request lines and unsupported HTTP versions answer bare
  JSON envelopes exactly like the stdlib's HTTP/0.9 degradation;
* a drained body keeps pipelined keep-alive connections in sync, with
  the same 1 MiB discard bound;
* ``unhandled_errors`` is the same tripwire, and the fault-injection
  points (``api.request.read``, ``api.response.write``) fire the same
  way.

Responses are written **zero-copy**: the service's shared-payload-cache
hits arrive as :class:`memoryview` slices over the mmap'd segment
(:meth:`repro.service.shared_cache.SharedPayloadCache.get`), and the
loop hands header and body straight to ``socket.sendmsg`` (scatter-
gather ``writev``) — the payload bytes go from the page cache to the
socket without ever being copied into a Python ``bytes`` object.

Dispatch is inline: route handlers run on the loop thread.  Cached
reads cost microseconds, so this is the latency-optimal choice; the
one blocking call a *reader* can make — forwarding ``POST /v1/ingest``
to the pool's writer — briefly parks the loop, which is acceptable
because ingests are rare and bounded (and the writer worker stays
threaded).
"""

from __future__ import annotations

import os
import selectors
import socket
import threading
import time
from email.utils import formatdate
from http.client import responses as _REASONS
from typing import Any, Optional
from urllib.parse import urlsplit

from repro import faults
from repro.obs import logging as obslog
from repro.obs import tracing
from repro.service.api import (
    MAX_BODY_BYTES, UNHANDLED_ERRORS_CAPACITY, QueryService, Response,
    _M_ERRORS, _M_REQUESTS, _M_REQUEST_SECONDS, _M_UNHANDLED,
    allowed_methods, json_bytes)
from repro.util.ringlog import RingLog

__all__ = ["EventLoopServer"]

#: One recv per readiness event reads up to this much.
_RECV_CHUNK = 65536

#: Longest tolerated request line (stdlib parity: 65536 + fudge).
_MAX_REQUEST_LINE = 65536

#: Total request-head bound (line + headers) before 431.
_MAX_HEAD_BYTES = 1 << 20

#: Upper bound on a discarded non-POST body (same constant as the
#: threaded handler's ``_MAX_DISCARDED_BODY``).
_MAX_DISCARDED_BODY = 1 << 20

#: Methods the service layer answers; everything else is 405/501.
_SERVICE_METHODS = frozenset({"GET", "HEAD", "POST"})
_WRITEISH_METHODS = frozenset({"PUT", "DELETE", "PATCH"})

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE


class _Connection:
    """Per-socket state: one of these per client, however idle."""

    __slots__ = ("sock", "fd", "inbuf", "scan_pos", "out", "events",
                 "closing", "draining", "discard", "pending", "need", "eof",
                 "last_activity")

    def __init__(self, sock: socket.socket, now: float) -> None:
        self.sock: Optional[socket.socket] = sock
        self.fd = sock.fileno()
        self.inbuf = bytearray()
        self.scan_pos = 0           # head-scan resume point (O(n) total)
        self.out: list[Any] = []    # bytes / memoryview, in write order
        self.events = _READ
        self.closing = False        # no more requests; close once flushed
        self.draining = False       # FIN sent; discarding until client EOF
        self.discard = 0            # request-body bytes still to skip
        self.pending: Optional[tuple[str, str, dict[str, str], bool]] = None
        self.need = 0               # body bytes the pending POST awaits
        self.eof = False
        self.last_activity = now


class _HandlerShim:
    """Duck-typed stand-in for the threaded server's handler class.

    The wire-contract suites poke ``server.RequestHandlerClass`` for two
    things — the bound ``service`` (to monkeypatch routes) and
    ``disable_nagle_algorithm`` — so the event-loop server exposes the
    same surface and reads ``service`` through it on every dispatch,
    keeping monkeypatches effective.
    """

    disable_nagle_algorithm = True

    def __init__(self, service: QueryService) -> None:
        self.service = service


class EventLoopServer:
    """Single-threaded non-blocking HTTP server over ``selectors``.

    API mirrors the threaded server where the pool and tests touch it:
    ``server_address``, ``serve_forever()``/``shutdown()``/
    ``server_close()``, ``unhandled_errors``, ``RequestHandlerClass``.
    Construct with either ``host``/``port`` or an already-listening
    ``listen_socket`` (the pre-fork pool's shared socket).

    ``crash_exit_code``: when set, an injected crash
    (:class:`repro.faults.InjectedCrash`) terminates the process with
    this exit code — the pool's crash-to-exit contract.
    """

    #: Idle keep-alive connections are reaped after this many seconds
    #: (same bound as the threaded handler's socket timeout).
    timeout = 30.0

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, listen_socket: Optional[socket.socket] = None,
                 crash_exit_code: Optional[int] = None) -> None:
        self.RequestHandlerClass = _HandlerShim(service)
        self.unhandled_errors: RingLog = RingLog(UNHANDLED_ERRORS_CAPACITY)
        self.crash_exit_code = crash_exit_code
        if listen_socket is None:
            self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listen.bind((host, port))
            self._listen.listen(128)
            self._owns_listen = True
        else:
            self._listen = listen_socket
            self._owns_listen = False
        self._listen.setblocking(False)
        self.server_address = self._listen.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._conns: dict[int, _Connection] = {}
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._shutdown_request = False
        self._stopped = threading.Event()
        self._stopped.set()
        self._loop_thread: Optional[threading.Thread] = None
        self._date_cache: tuple[int, bytes] = (0, b"")
        self._closed = False

    @property
    def service(self) -> QueryService:
        return self.RequestHandlerClass.service

    # -- lifecycle --------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._loop_thread = threading.current_thread()
        self._shutdown_request = False
        self._stopped.clear()
        sel = self._selector
        sel.register(self._listen, _READ, data="listen")
        sel.register(self._wake_recv, _READ, data="wake")
        next_sweep = time.monotonic() + poll_interval
        try:
            while not self._shutdown_request:
                for key, _mask in sel.select(poll_interval):
                    if key.data == "listen":
                        self._accept()
                    elif key.data == "wake":
                        try:
                            self._wake_recv.recv(4096)
                        except OSError:
                            pass
                    else:
                        self._handle_event(key.data, _mask)
                now = time.monotonic()
                if now >= next_sweep:
                    self._sweep_idle(now)
                    next_sweep = now + poll_interval
        finally:
            for fd in (self._listen, self._wake_recv):
                try:
                    sel.unregister(fd)
                except (KeyError, ValueError):
                    pass
            self._stopped.set()

    def shutdown(self) -> None:
        self._shutdown_request = True
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass
        if threading.current_thread() is not self._loop_thread:
            self._stopped.wait(timeout=10)

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        if self._owns_listen:
            self._listen.close()
        for sock in (self._wake_recv, self._wake_send):
            sock.close()
        self._selector.close()

    # -- connection plumbing ----------------------------------------------
    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listen.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP test sockets
                pass
            conn = _Connection(sock, time.monotonic())
            self._conns[conn.fd] = conn
            self._selector.register(sock, _READ, data=conn)

    def _set_events(self, conn: _Connection, events: int) -> None:
        if conn.sock is None or conn.events == events:
            return
        conn.events = events
        self._selector.modify(conn.sock, events, data=conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.sock is None:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        self._conns.pop(conn.fd, None)
        try:
            conn.sock.close()
        except OSError:
            pass
        conn.sock = None
        conn.out.clear()

    def _sweep_idle(self, now: float) -> None:
        cutoff = now - self.timeout
        for conn in [c for c in self._conns.values()
                     if c.last_activity < cutoff]:
            self._close_conn(conn)

    def _handle_event(self, conn: _Connection, mask: int) -> None:
        try:
            if mask & _WRITE:
                self._flush(conn)
            if conn.sock is not None and mask & _READ:
                self._read(conn)
        except BaseException as error:  # noqa: BLE001 — loop must survive
            if faults.is_crash(error):
                if self.crash_exit_code is not None:
                    os._exit(self.crash_exit_code)
                raise
            if isinstance(error, (ConnectionResetError, BrokenPipeError,
                                  TimeoutError)):
                self._close_conn(conn)
                return
            self.unhandled_errors.append(error)
            _M_UNHANDLED.inc()
            obslog.log_event("http.unhandled_error", level="error",
                             error=type(error).__name__)
            try:
                self._queue_error(conn, 500, "internal server error",
                                  close=True)
                self._flush(conn)
            except OSError:
                self._close_conn(conn)

    def _read(self, conn: _Connection) -> None:
        assert conn.sock is not None
        while True:
            try:
                data = conn.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if not data:
                conn.eof = True
                break
            if conn.draining:
                continue  # lingering close: discard until client EOF
            conn.inbuf += data
            if len(data) < _RECV_CHUNK:
                break
        if conn.draining:
            if conn.eof:
                self._close_conn(conn)
            return
        conn.last_activity = time.monotonic()
        self._process(conn)

    # -- request parsing ---------------------------------------------------
    def _process(self, conn: _Connection) -> None:
        """Drive the parse state machine over whatever is buffered."""
        while conn.sock is not None and not conn.closing:
            if conn.discard:
                take = min(len(conn.inbuf), conn.discard)
                del conn.inbuf[:take]
                conn.scan_pos = 0
                conn.discard -= take
                if conn.discard:
                    if conn.eof:
                        conn.closing = True  # drained body never arriving
                    break
            if conn.pending is not None:
                if len(conn.inbuf) < conn.need:
                    if conn.eof:
                        self._queue_error(
                            conn, 400,
                            "request body shorter than Content-Length",
                            close=True)
                    break
                body = bytes(conn.inbuf[:conn.need])
                del conn.inbuf[:conn.need]
                conn.scan_pos = 0
                method, target, headers, close_requested = conn.pending
                conn.pending = None
                self._dispatch_with_body(conn, method, target, headers,
                                         close_requested, body)
                continue
            if not self._parse_head(conn):
                break
        self._flush(conn)

    def _parse_head(self, conn: _Connection) -> bool:
        """Parse one request head if fully buffered.

        Returns ``True`` when a request was consumed (the caller loops
        for pipelining), ``False`` when more bytes are needed — after
        queueing whatever protocol-error answer applies.
        """
        buf = conn.inbuf
        nl = buf.find(b"\n")
        if nl < 0:
            if len(buf) > _MAX_REQUEST_LINE:
                self._queue_bare_error(conn, 414, "Request-URI Too Long")
            elif conn.eof:
                if buf.strip():
                    self._queue_bare_error(conn, 400, "Bad request syntax")
                else:
                    conn.closing = True  # clean half-close between requests
            return False
        line = bytes(buf[:nl]).rstrip(b"\r")
        parts = line.split()
        if len(parts) == 2:
            # An HTTP/0.9 simple request: serve the bare body (no status
            # line, no headers) and close — stdlib parity.
            del buf[:nl + 1]
            conn.scan_pos = 0
            if parts[0] == b"GET":
                self._dispatch_simple(conn, parts[1].decode("latin-1"))
            else:
                self._queue_bare_error(conn, 400, "Bad HTTP/0.9 request type")
            return False
        if len(parts) != 3:
            del buf[:nl + 1]
            conn.scan_pos = 0
            self._queue_bare_error(conn, 400, "Bad request syntax")
            return False
        version = parts[2]
        version_ok = False
        if version.startswith(b"HTTP/"):
            fields = version[5:].split(b".")
            if len(fields) == 2 and fields[0].isdigit() and fields[1].isdigit():
                version_ok = True
                vnum = (int(fields[0]), int(fields[1]))
        if not version_ok:
            del buf[:nl + 1]
            conn.scan_pos = 0
            self._queue_bare_error(conn, 400,
                                   f"Bad request version {version!r}")
            return False
        if vnum >= (2, 0):
            del buf[:nl + 1]
            conn.scan_pos = 0
            self._queue_bare_error(
                conn, 505, f"Invalid HTTP version ({vnum[0]}.{vnum[1]})")
            return False
        # HTTP/1.x: the full head (terminated by a blank line) must be
        # buffered before anything dispatches.
        head_end = self._find_head_end(conn, nl + 1)
        if head_end < 0:
            if len(buf) > _MAX_HEAD_BYTES:
                self._queue_error(conn, 431,
                                  "request header section too large",
                                  close=True)
            elif conn.eof:
                self._queue_bare_error(conn, 400, "truncated request head")
            return False
        headers: dict[str, str] = {}
        for raw in bytes(buf[nl + 1:head_end]).split(b"\n"):
            raw = raw.rstrip(b"\r")
            if not raw:
                continue
            key, sep, value = raw.partition(b":")
            if not sep:
                continue
            headers[key.decode("latin-1").strip().title()] = \
                value.decode("latin-1").strip()
        del buf[:head_end + 1]
        conn.scan_pos = 0
        method = parts[0].decode("latin-1")
        target = parts[1].decode("latin-1")
        if vnum < (1, 1):
            keep = headers.get("Connection", "").lower() == "keep-alive"
        else:
            keep = "close" not in headers.get("Connection", "").lower()
        self._dispatch_head(conn, method, target, headers,
                            close_requested=not keep)
        return True

    def _find_head_end(self, conn: _Connection, start: int) -> int:
        """Index of the ``\\n`` ending the blank line after the headers.

        Resumes from ``conn.scan_pos`` (always a line start) so repeated
        partial fills stay linear in total bytes received.
        """
        buf = conn.inbuf
        pos = max(start, conn.scan_pos)
        while True:
            nl = buf.find(b"\n", pos)
            if nl < 0:
                conn.scan_pos = pos
                return -1
            if buf[pos:nl].rstrip(b"\r") == b"":
                return nl
            pos = nl + 1

    # -- dispatch ----------------------------------------------------------
    def _dispatch_head(self, conn: _Connection, method: str, target: str,
                       headers: dict[str, str],
                       close_requested: bool) -> None:
        if method == "POST":
            if headers.get("Transfer-Encoding"):
                self._queue_error(
                    conn, 400, "chunked transfer encoding is not supported; "
                               "send Content-Length", close=True)
                return
            declared = headers.get("Content-Length")
            if declared is None:
                self._queue_error(conn, 411, "POST requires Content-Length",
                                  close=True)
                return
            try:
                length = int(declared)
            except ValueError:
                length = -1
            if length < 0:
                self._queue_error(conn, 400,
                                  f"invalid Content-Length {declared!r}",
                                  close=True)
                return
            if length > MAX_BODY_BYTES:
                # Answer without reading a single body byte.
                self._queue_error(
                    conn, 413,
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                    close=True)
                return
            conn.pending = (method, target, headers, close_requested)
            conn.need = length
            return
        # Non-POST: drain any declared body so pipelining stays in sync
        # (same rules as the threaded handler's _drain_request_body).
        must_close = close_requested
        if headers.get("Transfer-Encoding"):
            must_close = True
        else:
            declared = headers.get("Content-Length")
            if declared is not None:
                try:
                    length = int(declared)
                except ValueError:
                    length = -1
                if length < 0:
                    must_close = True
                else:
                    conn.discard = min(length, _MAX_DISCARDED_BODY)
                    must_close = must_close or length > _MAX_DISCARDED_BODY
        if method in ("GET", "HEAD"):
            response = self._service_call(conn, "GET", target, headers,
                                          b"", command=method)
            if response is not None:
                self._queue_response(conn, response,
                                     send_body=method != "HEAD",
                                     close=must_close)
        elif method in _WRITEISH_METHODS:
            allow = allowed_methods(urlsplit(target).path)
            self._queue_error(
                conn, 405,
                f"method {method} not allowed (allowed: {allow})",
                close=must_close, allow=allow)
        else:
            self._queue_error(conn, 501,
                              f"unsupported method ({method!r})", close=True)

    def _dispatch_with_body(self, conn: _Connection, method: str,
                            target: str, headers: dict[str, str],
                            close_requested: bool, body: bytes) -> None:
        if faults.ACTIVE is not None:
            # Injection point "api.request.read": same semantics as the
            # threaded handler — a drop is the client vanishing
            # mid-upload, an error rule a socket-level read failure.
            try:
                faults.ACTIVE.hit("api.request.read")
            except ConnectionResetError:
                self._close_conn(conn)
                return
            except faults.InjectedFault:
                self.unhandled_errors.append(
                    faults.InjectedFault("api.request.read"))
                self._queue_error(conn, 500, "internal server error",
                                  close=True)
                return
        response = self._service_call(conn, method, target, headers, body,
                                      command=method)
        if response is not None:
            self._queue_response(conn, response, send_body=True,
                                 close=close_requested)

    def _dispatch_simple(self, conn: _Connection, target: str) -> None:
        """HTTP/0.9: body only, then close (stdlib degradation parity)."""
        response = self._service_call(conn, "GET", target, {}, b"",
                                      command="GET")
        if response is not None and response.body:
            conn.out.append(self._fault_body(conn, response.body))
        conn.closing = True

    def _service_call(self, conn: _Connection, method: str, target: str,
                      headers: dict[str, str], body: bytes,
                      command: str) -> Optional[Response]:
        """One traced service call (the threaded ``_service_call`` twin)."""
        trace_id = headers.get("X-Request-Id") or tracing.new_trace_id()
        start = time.perf_counter()
        token = tracing.activate(trace_id)
        try:
            response = self.service.handle_request(
                target, headers, method=method, body=body)
            duration = time.perf_counter() - start
            response.headers["X-Request-Id"] = trace_id
            _M_REQUESTS.labels(method=command).inc()
            _M_REQUEST_SECONDS.observe(duration)
            if obslog.enabled("debug"):
                obslog.log_event(
                    "http.request", level="debug", method=command,
                    path=target, status=response.status,
                    duration_ms=round(duration * 1000.0, 3),
                    cache=response.headers.get("X-Repro-Cache"))
            return response
        finally:
            tracing.deactivate(token)

    # -- response assembly -------------------------------------------------
    def _date_bytes(self) -> bytes:
        now = int(time.time())
        if self._date_cache[0] != now:
            self._date_cache = (
                now, formatdate(now, usegmt=True).encode("latin-1"))
        return self._date_cache[1]

    def _fault_body(self, conn: _Connection, body) -> Any:
        """Apply the ``api.response.write`` injection point to ``body``.

        A ``torn`` rule truncates the body (the declared Content-Length
        stays full, so the client observes a torn response) and closes;
        a ``drop`` ships nothing and closes — matching the threaded
        server's ``torn_write`` mapping to a mid-body connection loss.
        """
        if faults.ACTIVE is None:
            return body
        try:
            keep = faults.ACTIVE.on_write("api.response.write", len(body))
        except (faults.InjectedFault, ConnectionResetError):
            conn.closing = True
            return b""
        if keep is None:
            return body
        conn.closing = True
        return body[:keep]

    def _queue_response(self, conn: _Connection, response: Response,
                        send_body: bool, close: bool) -> None:
        status = response.status
        reason = _REASONS.get(status, "")
        head = [f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1"),
                b"Server: repro-serve/1.1\r\nDate: ", self._date_bytes(),
                b"\r\n"]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}\r\n".encode("latin-1"))
        head.append(b"Content-Length: %d\r\n" % len(response.body))
        if close:
            head.append(b"Connection: close\r\n")
        head.append(b"\r\n")
        conn.out.append(b"".join(head))
        if (send_body and response.body and status >= 200
                and status not in (204, 205, 304)):
            # The body rides as its own iovec: a shared-cache memoryview
            # goes to sendmsg untouched (zero-copy), bytes likewise.
            conn.out.append(self._fault_body(conn, response.body))
        if close:
            conn.closing = True

    def _queue_error(self, conn: _Connection, status: int, message: str,
                     close: bool = False,
                     allow: Optional[str] = None) -> None:
        """The threaded ``_send_json_error`` twin: framed JSON envelope."""
        _M_ERRORS.labels(code=str(status)).inc()
        body = json_bytes({"error": {"status": status, "message": message}})
        headers = {"Content-Type": "application/json; charset=utf-8"}
        if allow:
            headers = {"Allow": allow, **headers}
        self._queue_response(
            conn, Response(status, body, headers), send_body=True,
            close=close)

    def _queue_bare_error(self, conn: _Connection, status: int,
                          message: str) -> None:
        """Protocol failure before HTTP/1.1 framing was agreed.

        Stdlib parity: when the request line never parsed (or declared
        an unsupported version), the answer is the JSON envelope *body
        only* — no status line, no headers — and the connection closes.
        """
        conn.out.append(json_bytes(
            {"error": {"status": status, "message": message}}))
        conn.closing = True

    # -- writing -----------------------------------------------------------
    def _flush(self, conn: _Connection) -> None:
        if conn.sock is None:
            return
        while conn.out:
            try:
                sent = conn.sock.sendmsg(conn.out[:32])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            while sent and conn.out:
                first = conn.out[0]
                size = len(first)
                if sent >= size:
                    sent -= size
                    conn.out.pop(0)
                else:
                    view = first if isinstance(first, memoryview) \
                        else memoryview(first)
                    conn.out[0] = view[sent:]
                    sent = 0
        if conn.out:
            self._set_events(conn, _READ | _WRITE)
            return
        self._set_events(conn, _READ)
        if conn.closing or (conn.eof and conn.pending is None
                            and not conn.inbuf.strip()):
            if conn.eof:
                # The client already finished sending: a plain close
                # delivers a clean FIN.
                self._close_conn(conn)
            else:
                self._linger_close(conn)

    def _linger_close(self, conn: _Connection) -> None:
        """Send FIN, then drain until the client closes its side.

        Closing outright here would RST a pipelined request the client
        already has in flight (data arriving at a closed socket), and
        the client would see a connection *reset* instead of the clean
        EOF the wire contract promises after a ``Connection: close``
        answer.  The drain is bounded by the idle sweep.
        """
        if conn.draining or conn.sock is None:
            return
        conn.draining = True
        conn.inbuf.clear()
        try:
            conn.sock.shutdown(socket.SHUT_WR)
        except OSError:
            self._close_conn(conn)
            return
        self._set_events(conn, _READ)
