"""repro.service — the serving subsystem on top of the analysis library.

Three layers turn the in-process analysis pipeline into a system that can
answer queries without rebuilding the world per request:

* :mod:`repro.service.store` — :class:`ArchiveStore`, an append-only
  on-disk snapshot store (shared string table + per-day rank arrays,
  sharded by provider/month) that warm-starts
  :class:`~repro.providers.base.ListArchive` objects *and* the
  :mod:`repro.core.cache` delta engine on load.
* :mod:`repro.service.index` — :class:`DomainIndex`, a domain-centric
  inverted index (``domain → provider → [(date, rank)]`` plus base-domain
  membership intervals) answering rank-history, longevity and
  days-in-top-k queries without an archive scan.
* :mod:`repro.service.api` — :class:`QueryService`, the deterministic
  JSON query layer behind the ``repro-serve`` HTTP endpoints, with an
  LRU result cache keyed on the store version and ETag revalidation.
* :mod:`repro.service.replica` — :class:`Replica`, a follower that
  tails a leader's mutation log over ``GET /v1/replication/log`` and
  converges to byte-identical store files and payloads (retry/backoff
  and circuit breaking via :mod:`repro.util.retry`; failure modes are
  reproducible through :mod:`repro.faults`), plus :class:`StoreTailer`,
  the same convergence loop over a shared filesystem.
* :mod:`repro.service.workers` — :class:`WorkerPool`, the pre-fork
  multi-process server: N read-only workers accepting on one shared
  socket, one writer owning ingest, supervised respawn, and an
  aggregated metrics control endpoint.
* :mod:`repro.service.shared_cache` — :class:`SharedPayloadCache`, the
  mmap-shared rendered-payload segment the pool's workers serve from.
* :mod:`repro.service.balance` — :class:`Balancer`, a stdlib
  round-robin proxy that ejects backends failing ``/v1/ready`` and
  re-admits them on recovery.

The command-line entry point lives in :mod:`repro.service.cli`
(``repro-serve`` / ``python -m repro.service.cli``).
"""

from repro.service.api import QueryService, Response, create_server
from repro.service.balance import Backend, Balancer
from repro.service.index import DomainIndex, DomainLongevity
from repro.service.replica import Replica, ReplicaError, StoreTailer, http_fetcher
from repro.service.shared_cache import SharedPayloadCache
from repro.service.store import ArchiveStore
from repro.service.workers import WorkerPool

__all__ = [
    "ArchiveStore",
    "Backend",
    "Balancer",
    "DomainIndex",
    "DomainLongevity",
    "QueryService",
    "Replica",
    "ReplicaError",
    "Response",
    "SharedPayloadCache",
    "StoreTailer",
    "WorkerPool",
    "create_server",
    "http_fetcher",
]
