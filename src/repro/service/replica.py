"""Follower replica: tail a leader's mutation log into a local store.

The :class:`~repro.service.store.ArchiveStore` manifest records every
mutation in one global order (its ``log``; entry *i* produced store
version *i + 1*), and appends are deterministic given that order — the
interner table's first-seen ordering, the shard records and the zlib
payloads all fall out of the entry sequence alone.  A follower therefore
needs no snapshot transfer or file copying: it replays the leader's log
through the *ordinary* append machinery and converges to byte-identical
``interner.tbl`` / shard files, hence byte-identical query payloads at
every shared version (the chaos differential tests assert exactly this).

:class:`Replica` pulls batches from ``GET /v1/replication/log`` (or any
injected ``fetch`` callable — the tests drive a leader's
:meth:`~repro.service.api.QueryService.handle_request` in-process),
retries transient failures under a :class:`~repro.util.retry.RetryPolicy`
with a :class:`~repro.util.retry.CircuitBreaker`, and applies entries
with batched ``sync=False`` appends plus one :meth:`flush` per cycle.

Crash safety comes for free from the store: a replica killed mid-batch
left un-fsynced tails the durable manifest does not name; the next open
truncates them, ``store.version`` falls back to the durable truth, and
the next sync re-fetches from there — re-appending the same entries at
the truncated EOF reproduces the same bytes.  Entries at or below the
local version are skipped, so re-delivered batches are idempotent.
"""

from __future__ import annotations

import datetime as dt
import http.client
import json
import random
import threading
import time
import urllib.request
from typing import Any, Callable, Mapping, Optional
from urllib.parse import urlencode

from repro import faults
from repro.obs import logging as obslog
from repro.obs import metrics, tracing
from repro.providers.base import ListSnapshot
from repro.service.api import json_bytes
from repro.service.store import ArchiveStore
from repro.util.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryExhaustedError,
    RetryPolicy,
    call_with_retry,
)

__all__ = ["Replica", "ReplicaError", "StoreTailer", "http_fetcher"]


class ReplicaError(RuntimeError):
    """Replication cannot proceed (divergence, gaps, malformed entries)."""


# Sync cycles are ms-scale (network fetch + batched appends + flush);
# registry instruments are affordable per cycle.
_M_SYNC_CYCLES = metrics.counter(
    "repro_replica_sync_cycles_total", "Completed replica sync cycles.")
_M_SYNC_SECONDS = metrics.histogram(
    "repro_replica_sync_seconds", "Wall-clock seconds per sync cycle.")
_M_APPLIED = metrics.counter(
    "repro_replica_entries_applied_total",
    "Replication log entries applied to the local store.")
_M_SYNC_ERRORS = metrics.counter(
    "repro_replica_sync_errors_total",
    "Sync cycles that failed (recorded in status()).")
_M_LAG = metrics.gauge(
    "repro_replication_lag_versions",
    "leader_version - local_version observed at the end of the last "
    "sync cycle.")


def _log_request(base: str, since: int, limit: int) -> urllib.request.Request:
    """The replication-log fetch, stamped with the active trace id.

    :meth:`Replica.sync_once` activates one trace id per cycle, so every
    fetch of that cycle carries the same ``X-Request-Id`` — a leader's
    access log correlates follower tailing without any other protocol.
    """
    query = urlencode({"since": since, "max": limit})
    trace_id = tracing.current_trace_id() or tracing.new_trace_id()
    return urllib.request.Request(f"{base}/v1/replication/log?{query}",
                                  headers={"X-Request-Id": trace_id})


def http_fetcher(base_url: str,
                 timeout: float = 10.0) -> Callable[[int, int], dict]:
    """A ``fetch(since, limit)`` callable over HTTP (stdlib only).

    Network failures surface as ``OSError``/``urllib`` errors, which the
    replica's retry policy treats as transient.
    """
    base = base_url.rstrip("/")

    def fetch(since: int, limit: int) -> dict:
        try:
            with urllib.request.urlopen(_log_request(base, since, limit),
                                        timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except http.client.HTTPException as error:
            # Truncated/garbled responses (e.g. IncompleteRead when the
            # leader dies mid-send) are transient network failures, not
            # protocol errors — normalise to the retryable shape.
            raise OSError(f"replication fetch failed: {error!r}") from error

    return fetch


class Replica:
    """Tail one leader's mutation log into a local follower store.

    ``fetch(since, limit)`` returns the leader's replication payload
    (``{"store_version", "entries", "remaining", ...}``).  One replica
    owns its store's write side; :meth:`status` is safe from any thread
    (the health endpoint calls it concurrently with a sync cycle).
    """

    def __init__(self, store: ArchiveStore,
                 fetch: Callable[[int, int], Mapping[str, Any]],
                 *,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 batch: int = 16,
                 max_staleness: int = 0,
                 rng: Optional[random.Random] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.store = store
        self.policy = policy if policy is not None else RetryPolicy(
            max_attempts=5, base_delay=0.02, max_delay=0.5)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=8, reset_timeout=5.0, clock=clock)
        self.batch = batch
        #: Largest ``leader_version - local_version`` :meth:`ready` accepts.
        self.max_staleness = max_staleness
        self._fetch = fetch
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._leader_version: Optional[int] = None
        self._last_error: Optional[BaseException] = None
        self._sync_cycles = 0
        self._applied_total = 0

    # -- observability ----------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Staleness and degraded-mode flags (the health payload body)."""
        with self._lock:
            leader_version = self._leader_version
            last_error = self._last_error
            cycles = self._sync_cycles
            applied = self._applied_total
        local = self.store.version
        staleness = (None if leader_version is None
                     else max(0, leader_version - local))
        return {
            "leader_version": leader_version,
            "local_version": local,
            "staleness": staleness,
            "max_staleness": self.max_staleness,
            "breaker": self.breaker.state,
            "last_error": (f"{type(last_error).__name__}: {last_error}"
                           if last_error is not None else None),
            "sync_cycles": cycles,
            "entries_applied": applied,
        }

    def staleness(self) -> Optional[int]:
        """Versions behind the last-seen leader (``None`` before a sync)."""
        return self.status()["staleness"]

    def ready(self) -> bool:
        """Whether this follower should take read traffic."""
        staleness = self.staleness()
        return staleness is not None and staleness <= self.max_staleness

    # -- the tail loop ----------------------------------------------------
    def _fetch_batch(self) -> Mapping[str, Any]:
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("replica.fetch")
        return self._fetch(self.store.version, self.batch)

    def _apply(self, entry: Mapping[str, Any]) -> bool:
        """Apply one log entry; returns whether it advanced the store.

        Entries at or below the local version are idempotently skipped
        (re-delivered batch); an entry that would leave a version gap is
        a protocol violation and raises — a follower must never append
        day *n+1* without day *n*.
        """
        if faults.ACTIVE is not None:
            faults.ACTIVE.hit("replica.apply")
        version = entry["version"]
        local = self.store.version
        if version <= local:
            return False
        if version != local + 1:
            raise ReplicaError(
                f"replication gap: leader sent version {version}, "
                f"local store is at {local}")
        kind = entry["kind"]
        if kind == "append":
            snapshot = ListSnapshot.from_cleaned_entries(
                entry["provider"], dt.date.fromisoformat(entry["date"]),
                entry["entries"])
            self.store.append(snapshot, sync=False)
        elif kind == "report":
            # ``json_bytes`` is the canonical serialisation the leader
            # stored, so the round trip is byte-stable.
            self.store.save_report_bytes(entry["profile"],
                                         json_bytes(entry["document"]))
        else:
            raise ReplicaError(f"unknown replication entry kind {kind!r}")
        return True

    def sync_once(self) -> int:
        """One sync cycle: fetch/apply until caught up with the leader.

        Returns how many entries were applied.  Transient fetch failures
        retry under the policy (and trip the breaker); exhaustion raises
        :class:`~repro.util.retry.RetryExhaustedError`.  Batched appends
        are flushed durably before the cycle counts as complete.
        """
        applied = 0
        start = time.perf_counter()
        # One trace id per cycle: every leader fetch of this cycle (see
        # _log_request) and every log line below carries it.
        trace_token = tracing.activate(tracing.new_trace_id())
        try:
            try:
                while True:
                    payload = call_with_retry(
                        self._fetch_batch, self.policy,
                        retry_on=(OSError, json.JSONDecodeError),
                        rng=self._rng, clock=self._clock, sleep=self._sleep,
                        breaker=self.breaker)
                    leader_version = payload["store_version"]
                    with self._lock:
                        self._leader_version = leader_version
                    if leader_version < self.store.version:
                        raise ReplicaError(
                            f"leader at version {leader_version} is behind "
                            f"this replica ({self.store.version}); refusing "
                            f"to diverge")
                    for entry in payload["entries"]:
                        if self._apply(entry):
                            applied += 1
                    if not payload["remaining"] \
                            and self.store.version >= leader_version:
                        break
            except BaseException as error:
                if applied and not faults.is_crash(error):
                    # Keep the prefix that did land: it is valid data and
                    # the next cycle resumes after it.  (Not on a
                    # simulated crash — a dead process runs no cleanup;
                    # recovery happens at the next open instead.)
                    self.store.flush()
                if not faults.is_crash(error):
                    recorded = error
                    if isinstance(error, RetryExhaustedError) \
                            and error.last_error is not None:
                        # Health pages want the root cause ("leader
                        # refused connection"), not the retry wrapper.
                        recorded = error.last_error
                    with self._lock:
                        self._last_error = recorded
                    _M_SYNC_ERRORS.inc()
                    obslog.log_event(
                        "replica.sync_error", level="warning",
                        applied=applied,
                        error=f"{type(recorded).__name__}: {recorded}")
                raise
            if applied:
                self.store.flush()
            with self._lock:
                self._last_error = None
                self._sync_cycles += 1
                self._applied_total += applied
            lag = max(0, leader_version - self.store.version)
            _M_SYNC_CYCLES.inc()
            _M_APPLIED.inc(applied)
            _M_LAG.set(lag)
            _M_SYNC_SECONDS.observe(time.perf_counter() - start)
            obslog.log_event(
                "replica.sync", level="debug", applied=applied,
                local_version=self.store.version,
                leader_version=leader_version, staleness=lag)
            return applied
        finally:
            tracing.deactivate(trace_token)

    def sync_to_leader(self, attempts: int = 10) -> int:
        """Sync until staleness 0, tolerating leader churn in between.

        :meth:`sync_once` already loops until it has caught up with the
        version its last fetch reported; this wrapper re-runs it while
        fresh mutations keep landing, up to ``attempts`` cycles.
        """
        total = 0
        for _ in range(attempts):
            total += self.sync_once()
            if self.staleness() == 0:
                return total
        raise ReplicaError(
            f"still {self.staleness()} versions behind after "
            f"{attempts} sync cycles")

    def run(self, stop: threading.Event, poll_interval: float = 1.0) -> None:
        """Tail forever (the ``repro-serve serve --follow`` loop).

        Sync failures are recorded (health reports them as degraded) and
        retried next tick; an injected crash propagates — a simulated
        process death must kill the loop, not be absorbed by it.
        """
        while not stop.is_set():
            try:
                self.sync_once()
            except (RetryExhaustedError, CircuitOpenError, ReplicaError,
                    OSError, KeyError, ValueError):
                pass  # recorded in status(); retried next tick
            stop.wait(poll_interval)


_M_TAILER_REFRESHES = metrics.counter(
    "repro_tailer_refreshes_total",
    "Disk-tail refresh cycles that adopted new store versions.")
_M_TAILER_LAG = metrics.gauge(
    "repro_tailer_lag_versions",
    "published_version - adopted_version observed at the end of the "
    "last disk-tail refresh cycle.")


class StoreTailer:
    """Follow versions another *process* publishes to this store's disk.

    The worker pool's consistency primitive: the writer process appends
    and publishes the manifest; each read worker runs one ``StoreTailer``
    that polls :meth:`QueryService.refresh_from_disk` — the same
    incremental ``extend_base_id_sets`` + ``DomainIndex.add`` path a
    network follower replays, minus the network (the "log transport" is
    the shared filesystem, and the shard bytes are already local, so
    nothing is re-appended — just adopted).

    Interface-compatible with :class:`Replica` where
    :meth:`QueryService.attach_replica` consumes it (``status()`` /
    ``staleness()`` / ``ready()`` / ``run()``), so ``/v1/health`` and
    ``/v1/ready`` report a read worker's staleness with no new plumbing.
    """

    def __init__(self, service, *, max_staleness: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.service = service
        #: Largest ``published - adopted`` version gap ``ready()`` accepts.
        self.max_staleness = max_staleness
        self._clock = clock
        self._lock = threading.Lock()
        self._refresh_cycles = 0
        self._versions_adopted = 0
        self._last_error: Optional[BaseException] = None
        #: Wall-clock seconds the last adopting refresh observed between
        #: polls — the *measured* staleness bound the pool tests assert.
        self._last_adopt_seconds: Optional[float] = None
        self._last_poll: Optional[float] = None

    def _published_version(self) -> Optional[int]:
        """The durable manifest's version (what the writer has made real)."""
        store = self.service.store
        try:
            manifest = json.loads(
                store._manifest_path.read_text(encoding="utf-8"))
            return int(manifest["store_version"])
        except (OSError, ValueError, KeyError):
            return None

    def status(self) -> dict[str, Any]:
        """Staleness report in the shape ``/v1/health`` renders."""
        with self._lock:
            cycles = self._refresh_cycles
            adopted = self._versions_adopted
            last_error = self._last_error
            adopt_seconds = self._last_adopt_seconds
        local = self.service.store.version
        published = self._published_version()
        staleness = (None if published is None
                     else max(0, published - local))
        return {
            "mode": "disk-tail",
            "leader_version": published,
            "local_version": local,
            "staleness": staleness,
            "max_staleness": self.max_staleness,
            "last_error": (f"{type(last_error).__name__}: {last_error}"
                           if last_error is not None else None),
            "sync_cycles": cycles,
            "entries_applied": adopted,
            "last_adopt_seconds": adopt_seconds,
        }

    def staleness(self) -> Optional[int]:
        return self.status()["staleness"]

    def ready(self) -> bool:
        staleness = self.staleness()
        return staleness is not None and staleness <= self.max_staleness

    def sync_once(self) -> int:
        """One refresh cycle; returns versions adopted."""
        store = self.service.store
        before = store.version
        now = self._clock()
        try:
            self.service.refresh_from_disk()
        except Exception as error:  # noqa: BLE001 — recorded, retried
            with self._lock:
                self._last_error = error
            raise
        adopted = store.version - before
        with self._lock:
            self._refresh_cycles += 1
            self._last_error = None
            if adopted:
                self._versions_adopted += adopted
                if self._last_poll is not None:
                    self._last_adopt_seconds = now - self._last_poll
            self._last_poll = now
        if adopted:
            _M_TAILER_REFRESHES.inc()
        _M_TAILER_LAG.set(max(0, (self._published_version() or 0)
                              - store.version))
        return adopted

    def run(self, stop: threading.Event, poll_interval: float = 0.2) -> None:
        """Tail the disk until ``stop`` — a read worker's refresh thread.

        ``poll_interval`` *is* the configured staleness bound in seconds
        (plus one refresh's work): a version the writer publishes at time
        *t* is adopted by ``t + poll_interval`` in the absence of faults.
        """
        while not stop.is_set():
            try:
                self.sync_once()
            except Exception:  # noqa: BLE001 — recorded in status();
                pass           # retried next tick (InjectedCrash is a
                               # BaseException and still kills the loop)
            stop.wait(poll_interval)
