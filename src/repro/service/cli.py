"""``repro-serve`` — build, serve, feed and query archive stores.

Six subcommands::

    repro-serve init   --store DIR [--scenario NAME] [--tiny | --scale NAME]
                       [--no-report]
    repro-serve serve  --store DIR [--host H] [--port P] [--log-level L]
                       [--follow URL [--poll-interval S] [--max-staleness N]]
                       [--workers N [--ready-file PATH]] [--event-loop]
    repro-serve balance --backend URL [--backend URL ...] [--host H]
                       [--port P] [--check-interval S] [--eject-after N]
    repro-serve ingest (--store DIR | --url URL) --provider P [--date D]
                       [--retry] FILE [FILE ...]
    repro-serve query  --store DIR TARGET [TARGET ...]
    repro-serve stats  URL [--raw]

``init`` simulates a scenario profile, persists its three provider
archives into an :class:`~repro.service.store.ArchiveStore` and stores
the scenario's report document; ``serve`` boots the ``/v1`` JSON API on
stdlib ``http.server`` — with ``--follow`` it serves a read-only
*follower* that tails the named leader's replication log and reports its
staleness on ``/v1/health`` — and with ``--workers N`` it pre-forks a
pool of read-only worker processes plus one writer over a shared
listening socket (:mod:`repro.service.workers`) — ``--event-loop``
swaps the readers' thread-per-connection server for the selectors/epoll
event loop (:mod:`repro.service.eventloop`), so idle keep-alive
connections cost one fd each; ``balance``
round-robins requests across serve/pool backends, ejecting any whose
``/v1/ready`` fails (:mod:`repro.service.balance`); ``ingest`` appends
downloaded top-list CSVs
(``rank,domain``, ``.zip``/``.csv.gz`` supported) to an existing store —
or, with ``--url``, POSTs them to a running leader, and ``--retry``
wraps either path in the shared backoff policy
(:mod:`repro.util.retry`); ``query`` answers requests offline through
the same :class:`~repro.service.api.QueryService` (handy for smoke
tests and debugging without a socket); ``stats`` scrapes a running
server's ``/v1/metrics`` + ``/v1/health`` and pretty-prints a snapshot.

``serve`` emits structured JSON log lines (:mod:`repro.obs.logging`) on
stderr — ``--log-level debug`` adds one ``http.request`` line per
request, with its ``X-Request-Id`` trace id.

Also runnable uninstalled: ``PYTHONPATH=src python -m repro.service.cli``.
"""

from __future__ import annotations

import argparse
import datetime as dt
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs import logging as obslog
from repro.scale import ScaleError, scale_names
from repro.scenarios.profiles import get_profile, profile_names
from repro.scenarios.runner import run_scenario
from repro.service.api import QueryService, create_server
from repro.service.store import ArchiveStore, StoreError

def _resolve_profile(name: str, tiny: bool, scale: Optional[str] = None):
    """Resolve a scenario, resized to a scale preset when asked.

    ``--tiny`` is shorthand for ``--scale tiny`` (the flag predates the
    preset registry and CI smoke jobs depend on the ``+tiny`` profile
    names it produces).  Synthetic-only presets raise
    :class:`repro.scale.ScaleError` with pointers to the synthetic
    corpus generator — ``init`` simulates, it does not fabricate.
    """
    profile = get_profile(name)
    if tiny:
        scale = "tiny"
    if scale is None:
        return profile
    return profile.at_scale(scale)


def _cmd_init(args: argparse.Namespace) -> int:
    store_dir = Path(args.store)
    with ArchiveStore(store_dir) as store:
        if store.providers():
            print(f"error: store at {store_dir} already holds providers "
                  f"{', '.join(store.providers())}", file=sys.stderr)
            return 2
        try:
            profile = _resolve_profile(args.scenario, args.tiny, args.scale)
        except ScaleError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"simulating scenario {profile.name!r} "
              f"({profile.config.n_days} days, list size {profile.config.list_size}) ...")
        from repro.providers.simulation import run_profile

        run = run_profile(profile)
        for name in sorted(run.archives):
            store.append_archive(run.archives[name])
            print(f"  stored {name}: {len(run.archives[name])} snapshots")
        if args.report:
            # Only now pay for the full analysis battery; --no-report inits
            # need just the simulated archives above.
            store.save_report(run_scenario(profile))
            print(f"  stored report: {profile.name}")
        print(f"store ready at {store_dir} (version {store.version})")
    print(f"serve it:  repro-serve serve --store {store_dir}")
    return 0


def _serve_pool(args: argparse.Namespace) -> int:
    """``serve --workers N``: run the pre-fork pool in the foreground."""
    import signal
    import threading

    from repro.service.workers import WorkerPool

    if args.follow:
        print("error: --workers and --follow are mutually exclusive "
              "(a pool's readers already tail the local store; run a "
              "separate follower process and front both with "
              "'repro-serve balance')", file=sys.stderr)
        return 2
    pool = WorkerPool(
        Path(args.store), workers=args.workers, host=args.host,
        port=args.port, event_loop=args.event_loop,
        ready_file=Path(args.ready_file) if args.ready_file else None)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    try:
        pool.start()
    except (StoreError, OSError, TimeoutError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    mode = "event-loop" if args.event_loop else "threaded"
    print(f"pool ready: http://{args.host}:{pool.port}/v1/meta "
          f"({args.workers} {mode} readers; writer :{pool.writer_port}; "
          f"control :{pool.control_port})")
    try:
        while not stop.is_set():
            stop.wait(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        pool.stop()
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    """``balance``: round-robin proxy over serve/pool backends."""
    import signal
    import threading

    from repro.service.balance import Balancer

    obslog.configure(level=args.log_level)
    try:
        balancer = Balancer(args.backends, host=args.host, port=args.port,
                            check_interval=args.check_interval,
                            eject_after=args.eject_after)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    try:
        balancer.start()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"balancing http://{args.host}:{balancer.port} across "
          f"{len(balancer.backends)} backends "
          f"(status: /v1/balancer)")
    try:
        while not stop.is_set():
            stop.wait(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        balancer.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    obslog.configure(level=args.log_level)
    if getattr(args, "workers", 0):
        return _serve_pool(args)
    follow = args.follow
    try:
        # A fresh follower bootstraps from an empty store; a leader must
        # be pointed at an existing one (init/ingest create it).
        store = ArchiveStore(args.store, create=follow is not None)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = QueryService(store, role="follower" if follow else "leader")
    stop: Optional[threading.Event] = None
    tailer: Optional[threading.Thread] = None
    if follow:
        from repro.service.replica import Replica, http_fetcher

        replica = Replica(store, http_fetcher(follow),
                          max_staleness=args.max_staleness)
        service.attach_replica(replica)
        stop = threading.Event()
        tailer = threading.Thread(
            target=replica.run, args=(stop, args.poll_interval),
            name="replica-tailer", daemon=True)
        tailer.start()
        obslog.log_event("serve.follow", leader=follow,
                         poll_interval=args.poll_interval,
                         max_staleness=args.max_staleness)
    if args.event_loop:
        from repro.service.eventloop import EventLoopServer

        server = EventLoopServer(service, host=args.host, port=args.port)
    else:
        server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    obslog.log_event("serve.start", store=str(args.store),
                     role=service.role, store_version=store.version,
                     providers=sorted(store.providers()),
                     url=f"http://{host}:{port}/v1/meta")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if stop is not None:
            stop.set()
            tailer.join(timeout=10)
        server.server_close()
        store.close()
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    # The wire ingest's validation, streaming: rows flow file →
    # clean_wire_entry → interner with junk rows skipped (counted), so
    # `POST /v1/ingest` and the offline twin accept the same files, keep
    # the same rows out of the persistent domain table, and neither ever
    # materialises a 1M-entry day as a Python string list.
    from repro.listio import stream_wire_top_list

    if (args.store is None) == (args.url is None):
        print("error: ingest needs exactly one of --store or --url",
              file=sys.stderr)
        return 2
    if args.date is not None and len(args.files) > 1:
        print("error: --date only applies to a single file; embed ISO dates "
              "in the file names for batches", file=sys.stderr)
        return 2

    from repro.util.retry import RetryPolicy, RetryExhaustedError, call_with_retry

    # One shared policy for both paths; --retry is what distinguishes a
    # flaky-disk/flaky-network ingest from fail-fast batch scripting.
    policy = RetryPolicy(max_attempts=5 if args.retry else 1,
                         base_delay=0.2, max_delay=5.0, deadline=60.0)

    def attempt(fn, what: str):
        if not args.retry:
            return fn()
        def note_retry(attempt_no, error, delay):
            obslog.log_event("ingest.retry", level="warning", what=what,
                             attempt=attempt_no, error=str(error),
                             next_delay_s=round(delay, 2))
        try:
            return call_with_retry(fn, policy, retry_on=(OSError,),
                                   on_retry=note_retry)
        except RetryExhaustedError as error:
            raise error.last_error or error

    if args.url is not None:
        return _ingest_over_http(args, attempt)

    try:
        store = ArchiveStore(args.store, create=args.create)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # The context manager is what makes batched sync=False tails durable
    # on *every* exit path, error returns included.
    with store:
        for path in args.files:
            try:
                snapshot, skipped = stream_wire_top_list(
                    path, provider=args.provider, date=args.date,
                    domain_column=args.domain_column)
                # Batched like append_archive: one durable manifest write
                # (and one fsync pass) for the whole invocation instead
                # of a full fsync chain per file.
                attempt(lambda: store.append(snapshot, sync=False),
                        f"append of {path}")
            except (StoreError, ValueError, OSError) as error:
                print(f"error: {path}: {error}", file=sys.stderr)
                return 2
            note = f" ({skipped} junk rows skipped)" if skipped else ""
            print(f"  ingested {args.provider} {snapshot.date}: "
                  f"{len(snapshot)} entries{note}")
    print(f"store at {args.store} now at version {store.version} "
          f"({len(store)} snapshots)")
    return 0


def _ingest_over_http(args: argparse.Namespace, attempt) -> int:
    """POST validated snapshots to a running leader (``ingest --url``)."""
    import json
    import urllib.error
    import urllib.request

    from repro.listio import stream_wire_top_list

    class _Rejected(Exception):
        """A 4xx the server will answer identically on retry."""

    base = args.url.rstrip("/")

    def post(snapshot):
        body = json.dumps({
            "provider": snapshot.provider,
            "date": snapshot.date.isoformat(),
            "entries": list(snapshot.entries),
        }).encode("utf-8")
        request = urllib.request.Request(
            f"{base}/v1/ingest", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace").strip()
            if error.code < 500:
                # Client errors (bad body, conflict, follower 403) won't
                # heal on retry; only 5xx/transport failures stay OSError
                # for the retry policy.
                raise _Rejected(f"HTTP {error.code}: {detail}") from None
            raise

    for path in args.files:
        try:
            snapshot, skipped = stream_wire_top_list(
                path, provider=args.provider, date=args.date,
                domain_column=args.domain_column)
            payload = attempt(lambda: post(snapshot), f"upload of {path}")
        except (_Rejected, ValueError, OSError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
        note = f" ({skipped} junk rows skipped)" if skipped else ""
        print(f"  uploaded {args.provider} {snapshot.date}: "
              f"{len(snapshot)} entries{note} "
              f"(leader version {payload['store_version']})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        store = ArchiveStore(args.store, create=False)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = QueryService(store)
    worst = 0
    for target in args.targets:
        response = service.handle_request(target)
        sys.stdout.write(bytes(response.body).decode("utf-8"))
        worst = max(worst, 0 if response.status < 400 else 1)
    return worst


def _cmd_stats(args: argparse.Namespace) -> int:
    """Scrape a running server and pretty-print a metrics snapshot."""
    import json
    import urllib.error
    import urllib.request

    from repro.obs.metrics import parse_exposition

    base = args.url.rstrip("/")
    try:
        with urllib.request.urlopen(f"{base}/v1/metrics",
                                    timeout=10) as response:
            text = response.read().decode("utf-8")
        if args.raw:
            sys.stdout.write(text)
            return 0
        with urllib.request.urlopen(f"{base}/v1/health",
                                    timeout=10) as response:
            health = json.loads(response.read().decode("utf-8"))
    except BrokenPipeError:
        return 0  # downstream pager/head closed the pipe; not an error
    except (OSError, urllib.error.URLError) as error:
        print(f"error: cannot scrape {base}: {error}", file=sys.stderr)
        return 2
    cache = health.get("cache", {})
    hit_ratio = cache.get("hit_ratio")
    try:
        print(f"{health.get('service', 'repro-serve')} @ {base}")
        print(f"  role {health.get('role')}  status {health.get('status')}  "
              f"store v{health.get('store_version')} "
              f"(data v{health.get('data_version')})")
        print(f"  lru {cache.get('entries')}/{cache.get('capacity')} entries, "
              f"hit ratio {'n/a' if hit_ratio is None else f'{hit_ratio:.1%}'} "
              f"({cache.get('hits')} hits / {cache.get('misses')} misses / "
              f"{cache.get('evictions')} evictions)")
        if "replication" in health:
            repl = health["replication"]
            print(f"  replication: staleness {repl.get('staleness')} "
                  f"(breaker {repl.get('breaker')}, "
                  f"applied {repl.get('entries_applied')})")
        print()
        # Histograms are summarised as their _count/_sum samples; the
        # full bucket vectors stay behind --raw.
        samples = parse_exposition(text)
        width = max(len(key) for key in samples) if samples else 0
        for key in sorted(samples):
            if key.rpartition("{")[0].endswith("_bucket") \
                    or key.endswith("_bucket"):
                continue
            value = samples[key]
            shown = int(value) if value == int(value) else value
            print(f"  {key:<{width}}  {shown}")
    except BrokenPipeError:
        pass  # downstream pager/head closed the pipe; not an error
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persistent top-list archive store and query API.")
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser(
        "init", help="simulate a scenario and persist it as a store")
    init.add_argument("--store", required=True, help="store directory to create")
    init.add_argument("--scenario", default="paper_realistic",
                      choices=sorted(profile_names()),
                      help="scenario profile to simulate (default: paper_realistic)")
    init.add_argument("--tiny", action="store_true",
                      help="fixture-sized corpus for smoke tests "
                           "(profile name gains a '+tiny' suffix; "
                           "shorthand for --scale tiny)")
    init.add_argument("--scale", default=None, choices=sorted(scale_names()),
                      help="resize the scenario to a named scale preset "
                           "(simulatable presets only; see repro.scale)")
    init.add_argument("--no-report", dest="report", action="store_false",
                      help="skip storing the scenario report document")
    init.set_defaults(func=_cmd_init)

    serve = commands.add_parser("serve", help="serve the /v1 JSON API")
    serve.add_argument("--store", required=True, help="store directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8098)
    serve.add_argument("--follow", default=None, metavar="URL",
                       help="run as a read-only follower tailing this "
                            "leader's /v1/replication/log (creates the "
                            "store directory if missing)")
    serve.add_argument("--poll-interval", type=float, default=1.0,
                       help="seconds between follower sync cycles "
                            "(default 1.0; --follow only)")
    serve.add_argument("--max-staleness", type=int, default=0,
                       help="versions a follower may lag and still answer "
                            "/v1/ready with 200 (default 0; --follow only)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="pre-fork N read-only worker processes plus "
                            "one writer over a shared listening socket "
                            "(POSIX only; 0 = single process, the "
                            "default; incompatible with --follow)")
    serve.add_argument("--event-loop", action="store_true",
                       help="serve reads from a selectors/epoll event loop "
                            "(one fd per idle connection instead of a "
                            "thread; with --workers, readers only)")
    serve.add_argument("--ready-file", default=None, metavar="PATH",
                       help="write a JSON description of the pool's "
                            "ports and pids once every worker is ready "
                            "(--workers only)")
    serve.add_argument("--log-level", default="info",
                       choices=sorted(obslog.LEVELS),
                       help="structured-log threshold on stderr "
                            "(default info; debug logs every request)")
    serve.set_defaults(func=_cmd_serve)

    ingest = commands.add_parser(
        "ingest", help="append downloaded top-list CSVs to an existing store")
    ingest.add_argument("--store", default=None, help="store directory to extend")
    ingest.add_argument("--url", default=None, metavar="URL",
                        help="POST to a running leader's /v1/ingest instead "
                             "of writing a local store")
    ingest.add_argument("--retry", action="store_true",
                        help="retry transient failures with backoff "
                             "(shared repro.util.retry policy)")
    ingest.add_argument("--create", action="store_true",
                        help="create the store if it does not exist yet "
                             "(real-data stores need no init)")
    ingest.add_argument("--provider", required=True,
                        help="provider name the snapshots belong to")
    ingest.add_argument("--date", type=dt.date.fromisoformat, default=None,
                        help="snapshot date (single file only; otherwise "
                             "derived from ISO dates in the file names)")
    ingest.add_argument("--domain-column", type=int, default=1,
                        help="CSV column holding the domain (default 1; "
                             "Majestic's rank,tld,domain format uses 2)")
    ingest.add_argument("files", nargs="+", metavar="FILE",
                        help="top-list files (.csv, .csv.gz or .zip)")
    ingest.set_defaults(func=_cmd_ingest)

    balance = commands.add_parser(
        "balance", help="round-robin proxy over repro-serve backends")
    balance.add_argument("--backend", action="append", required=True,
                         metavar="URL", dest="backends",
                         help="backend base URL (repeatable), e.g. "
                              "http://127.0.0.1:8098")
    balance.add_argument("--host", default="127.0.0.1")
    balance.add_argument("--port", type=int, default=8090)
    balance.add_argument("--check-interval", type=float, default=0.25,
                         help="seconds between /v1/ready probes "
                              "(default 0.25)")
    balance.add_argument("--eject-after", type=int, default=1,
                         help="consecutive failed probes before a "
                              "backend leaves rotation (default 1)")
    balance.add_argument("--log-level", default="info",
                         choices=sorted(obslog.LEVELS))
    balance.set_defaults(func=_cmd_balance)

    query = commands.add_parser(
        "query", help="answer API requests offline (no server)")
    query.add_argument("--store", required=True, help="store directory to query")
    query.add_argument("targets", nargs="+", metavar="TARGET",
                       help="request target, e.g. '/v1/providers/alexa/stability'")
    query.set_defaults(func=_cmd_query)

    stats = commands.add_parser(
        "stats", help="pretty-print a running server's metrics snapshot")
    stats.add_argument("url", metavar="URL",
                       help="base URL of a running repro-serve, "
                            "e.g. http://127.0.0.1:8098")
    stats.add_argument("--raw", action="store_true",
                       help="dump the raw Prometheus exposition instead "
                            "of the summary")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
