"""``repro-serve`` — build, serve and query archive stores.

Three subcommands::

    repro-serve init  --store DIR [--scenario NAME] [--tiny] [--no-report]
    repro-serve serve --store DIR [--host H] [--port P]
    repro-serve query --store DIR TARGET [TARGET ...]

``init`` simulates a scenario profile, persists its three provider
archives into an :class:`~repro.service.store.ArchiveStore` and stores
the scenario's report document; ``serve`` boots the ``/v1`` JSON API on
stdlib ``http.server``; ``query`` answers requests offline through the
same :class:`~repro.service.api.QueryService` (handy for smoke tests and
debugging without a socket).

Also runnable uninstalled: ``PYTHONPATH=src python -m repro.service.cli``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.scenarios.profiles import get_profile, profile_names
from repro.scenarios.runner import run_scenario
from repro.service.api import QueryService, create_server
from repro.service.store import ArchiveStore, StoreError

#: Scale overrides of ``--tiny``: a fixture-sized corpus (seconds to
#: simulate, kilobytes on disk) for CI smoke jobs and local poking.
_TINY_SCALE: dict[str, object] = dict(
    n_domains=1_500, new_domains_per_day=10, n_days=8,
    list_size=400, top_k=50,
    alexa_panel_users=8_000, umbrella_clients=6_000,
    majestic_linking_subnets=150_000,
    alexa_window_days=5, majestic_window_days=5,
)


def _resolve_profile(name: str, tiny: bool):
    profile = get_profile(name)
    if not tiny:
        return profile
    config = dataclasses.replace(profile.config, **_TINY_SCALE)  # type: ignore[arg-type]
    return dataclasses.replace(profile, name=f"{profile.name}+tiny", config=config)


def _cmd_init(args: argparse.Namespace) -> int:
    store_dir = Path(args.store)
    store = ArchiveStore(store_dir)
    if store.providers():
        print(f"error: store at {store_dir} already holds providers "
              f"{', '.join(store.providers())}", file=sys.stderr)
        return 2
    profile = _resolve_profile(args.scenario, args.tiny)
    print(f"simulating scenario {profile.name!r} "
          f"({profile.config.n_days} days, list size {profile.config.list_size}) ...")
    from repro.providers.simulation import run_profile

    run = run_profile(profile)
    for name in sorted(run.archives):
        store.append_archive(run.archives[name])
        print(f"  stored {name}: {len(run.archives[name])} snapshots")
    if args.report:
        # Only now pay for the full analysis battery; --no-report inits
        # need just the simulated archives above.
        store.save_report(run_scenario(profile))
        print(f"  stored report: {profile.name}")
    print(f"store ready at {store_dir} (version {store.version})")
    print(f"serve it:  repro-serve serve --store {store_dir}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        store = ArchiveStore(args.store, create=False)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = QueryService(store)
    server = create_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro-serve: store {args.store} (version {store.version}, "
          f"providers: {', '.join(store.providers()) or 'none'})")
    print(f"listening on http://{host}:{port}/v1/meta")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        store = ArchiveStore(args.store, create=False)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = QueryService(store)
    worst = 0
    for target in args.targets:
        response = service.handle_request(target)
        sys.stdout.write(response.body.decode("utf-8"))
        worst = max(worst, 0 if response.status < 400 else 1)
    return worst


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persistent top-list archive store and query API.")
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser(
        "init", help="simulate a scenario and persist it as a store")
    init.add_argument("--store", required=True, help="store directory to create")
    init.add_argument("--scenario", default="paper_realistic",
                      choices=sorted(profile_names()),
                      help="scenario profile to simulate (default: paper_realistic)")
    init.add_argument("--tiny", action="store_true",
                      help="fixture-sized corpus for smoke tests "
                           "(profile name gains a '+tiny' suffix)")
    init.add_argument("--no-report", dest="report", action="store_false",
                      help="skip storing the scenario report document")
    init.set_defaults(func=_cmd_init)

    serve = commands.add_parser("serve", help="serve the /v1 JSON API")
    serve.add_argument("--store", required=True, help="store directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8098)
    serve.set_defaults(func=_cmd_serve)

    query = commands.add_parser(
        "query", help="answer API requests offline (no server)")
    query.add_argument("--store", required=True, help="store directory to query")
    query.add_argument("targets", nargs="+", metavar="TARGET",
                       help="request target, e.g. '/v1/providers/alexa/stability'")
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
