"""Scale presets: one named knob for how big a corpus is.

The paper works on *Top-1M* lists; the repo's simulations, tests and
benchmarks work on scaled-down versions of them.  Before this module the
scale of everything was smeared across ad-hoc dicts (``--tiny`` in the
CLI, ``_SCENARIO_SCALE`` in the profiles, hand-picked sizes in each
benchmark).  A :class:`ScaleConfig` freezes one size regime under a
stable name so tests, benchmarks and the CLI all mean the same thing by
"tiny" or "full_1m":

``tiny``
    Fixture-sized (400-entry lists, 8 days).  Simulatable in seconds;
    the scale behind ``repro-serve init --tiny`` and the tier-1 test
    matrix.
``paper_bench``
    A 100k-entry, 10-day corpus — large enough that accidental O(day)
    materialisation or chunk-granularity bugs show up in memory/time
    ceilings, small enough for a CI job.  Synthetic-only.
``full_1m``
    The paper's native regime: 1M-entry lists over 30 days.  Far too
    large to *simulate* (the traffic model is per-user), so corpora at
    this scale come from :func:`synthetic_archive`, which writes churn
    and rank movement directly into id columns at array speed.

Synthetic corpora are deterministic (seeded), share one interned name
universe across providers, and exhibit the paper's headline behaviours
at configurable rates: daily churn (drops + re-entries + genuinely new
names) and block rank movement.  They are *performance* corpora — the
statistical analyses run on them, but their regime constants are not
calibrated to the paper's findings the way the simulation profiles are.
"""

from __future__ import annotations

import datetime as dt
import random
from array import array
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.interning import default_interner
from repro.providers.base import ListArchive, ListSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.scenarios.profiles import SimulationProfile

#: Provider names every preset's corpus carries, mirroring the paper's
#: three lists.
DEFAULT_PROVIDERS: tuple[str, ...] = ("alexa", "majestic", "umbrella")


class ScaleError(ValueError):
    """A scale preset was used in a mode it does not support."""


@dataclass(frozen=True)
class ScaleConfig:
    """One frozen size regime for corpora, tests and benchmarks.

    Attributes
    ----------
    list_size:
        Entries per daily list (the "1M" of Top-1M).
    n_days:
        Days in the observation period.
    analysis_top_k:
        Head size the head-sensitive analyses use at this scale (the
        paper's Top-1k against its Top-1M lists).
    churn_fraction:
        Fraction of list slots replaced per synthetic day.  The paper's
        steady-state lists sit near 1%.
    simulation_overrides:
        :class:`~repro.population.config.SimulationConfig` field
        overrides when this scale is small enough to run the per-user
        traffic simulation; ``None`` marks a synthetic-only scale.
    memory_budget_bytes:
        Ceiling the scale's analysis battery must stay under
        (tracemalloc peak); enforced by the scale test matrix and
        ``benchmarks/run_benchmarks.py --scale``.
    """

    name: str
    description: str
    list_size: int
    n_days: int
    analysis_top_k: int
    churn_fraction: float = 0.01
    providers: tuple[str, ...] = DEFAULT_PROVIDERS
    simulation_overrides: Optional[Mapping[str, object]] = None
    memory_budget_bytes: int = 2 * 1024**3

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError("scale name must be a non-empty token")
        if self.list_size <= 0:
            raise ValueError("list_size must be positive")
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if not 0 < self.analysis_top_k <= self.list_size:
            raise ValueError("analysis_top_k must be positive and at most list_size")
        if not 0.0 <= self.churn_fraction < 1.0:
            raise ValueError("churn_fraction must be in [0, 1)")
        if not self.providers:
            raise ValueError("providers must be non-empty")

    @property
    def simulatable(self) -> bool:
        """Whether the per-user traffic simulation can run at this scale."""
        return self.simulation_overrides is not None

    @property
    def churn_per_day(self) -> int:
        """Slots replaced per synthetic day (at least 1 once churning)."""
        if self.n_days == 1 or self.churn_fraction == 0.0:
            return 0
        return max(1, int(self.list_size * self.churn_fraction))

    @property
    def universe_size(self) -> int:
        """Distinct names a synthetic archive can need at this scale."""
        return self.list_size + (self.n_days - 1) * self.churn_per_day


def _build_scales() -> dict[str, ScaleConfig]:
    scales = [
        ScaleConfig(
            name="tiny",
            description=("Fixture-sized corpus (seconds to simulate, kilobytes "
                         "on disk) for CI smoke jobs and local poking."),
            list_size=400,
            n_days=8,
            analysis_top_k=50,
            churn_fraction=0.02,
            memory_budget_bytes=64 * 1024**2,
            simulation_overrides=MappingProxyType(dict(
                n_domains=1_500, new_domains_per_day=10, n_days=8,
                list_size=400, top_k=50,
                alexa_panel_users=8_000, umbrella_clients=6_000,
                majestic_linking_subnets=150_000,
                alexa_window_days=5, majestic_window_days=5,
            )),
        ),
        ScaleConfig(
            name="paper_bench",
            description=("100k-entry, 10-day synthetic corpus: big enough that "
                         "O(day) materialisation and chunk-granularity bugs "
                         "trip the memory/time ceilings, small enough for a "
                         "CI job."),
            list_size=100_000,
            n_days=10,
            analysis_top_k=1_000,
            memory_budget_bytes=512 * 1024**2,
        ),
        ScaleConfig(
            name="full_1m",
            description=("The paper's native regime: 1M-entry lists over 30 "
                         "days, three providers.  Synthetic-only; exercised "
                         "by benchmarks/run_benchmarks.py --scale."),
            list_size=1_000_000,
            n_days=30,
            analysis_top_k=1_000,
            memory_budget_bytes=2 * 1024**3,
        ),
    ]
    return {scale.name: scale for scale in scales}


#: The frozen built-in scale presets, by name.
SCALES: Mapping[str, ScaleConfig] = MappingProxyType(_build_scales())


def scale_names() -> tuple[str, ...]:
    """Names of the built-in scale presets, in registry order."""
    return tuple(SCALES)


def get_scale(scale: str | ScaleConfig) -> ScaleConfig:
    """Resolve a preset name (or pass a config through) with a helpful error."""
    if isinstance(scale, ScaleConfig):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(SCALES)
        raise KeyError(f"unknown scale preset {scale!r} (known: {known})") from None


def scaled_profile(profile: "SimulationProfile",
                   scale: str | ScaleConfig) -> "SimulationProfile":
    """A copy of ``profile`` resized to a simulatable scale preset.

    The copy's name gains a ``+<scale>`` suffix (``paper_realistic+tiny``)
    so per-profile caches and stored reports never collide with the
    full-size preset.  Synthetic-only scales raise :class:`ScaleError`:
    the per-user traffic simulation cannot run at 1M-list size, so
    corpora at those scales come from :func:`synthetic_archives` (or the
    ``--scale`` benchmark mode) instead.
    """
    scale = get_scale(scale)
    if not scale.simulatable:
        raise ScaleError(
            f"scale preset {scale.name!r} is synthetic-only: simulating "
            f"{scale.list_size:,}-entry lists per-user is not feasible; "
            "build corpora with repro.scale.synthetic_archives() or run "
            "benchmarks/run_benchmarks.py --scale")
    config = replace(profile.config, **scale.simulation_overrides)  # type: ignore[arg-type]
    return replace(profile, name=f"{profile.name}+{scale.name}", config=config)


def universe_ids(size: int) -> array:
    """Interned ids of the synthetic name universe, in canonical order.

    Names are valid wire domains (``s0000000.scale.example``) so synthetic
    days survive the serving layer's wire validation, and deterministic so
    every generator call shares the same interner rows.
    """
    width = max(7, len(str(max(size - 1, 1))))
    return default_interner().intern_many(
        f"s{i:0{width}d}.scale.example" for i in range(size))


def synthetic_archive(provider: str, scale: str | ScaleConfig, *,
                      seed: int = 20181031,
                      start_date: dt.date = dt.date(2018, 1, 1),
                      universe: Optional[array] = None) -> ListArchive:
    """Deterministic synthetic archive for one provider at a scale.

    Day 0 is the leading ``list_size`` window of the shared name
    universe; each later day replaces ``churn_per_day`` slots (three
    quarters genuinely new names, a quarter re-entries of previously
    dropped ones — the paper's observed drop/re-entry mix) and swaps two
    disjoint rank blocks so rank-sensitive analyses see movement.  All
    mutation happens on uint32 id arrays, so a 1M-entry day costs one
    4 MB array copy plus ``churn_per_day`` slot writes — no per-day
    Python string structures at all.

    ``universe`` lets callers share one interned universe across
    providers (see :func:`synthetic_archives`); per-provider RNG streams
    are derived from ``seed`` and the provider name, so each provider's
    churn positions and rank movement differ while membership stays
    heavily overlapping, as with the real lists.
    """
    scale = get_scale(scale)
    rng = random.Random(f"{seed}:{provider}")
    if universe is None:
        universe = universe_ids(scale.universe_size)
    elif len(universe) < scale.universe_size:
        raise ValueError(
            f"universe holds {len(universe)} ids but scale {scale.name!r} "
            f"can need {scale.universe_size}")
    list_size = scale.list_size
    churn = scale.churn_per_day
    current = array("I", universe[:list_size])
    fresh_at = list_size  # next never-seen universe id
    dropped: list[int] = []  # ids dropped earlier and not currently listed
    snapshots = [ListSnapshot.from_ids(provider=provider, date=start_date,
                                       ids=array("I", current))]
    for day in range(1, scale.n_days):
        ids = array("I", current)
        if churn:
            # Today's drops only join the re-entry pool tomorrow: a
            # same-day drop-and-re-entry would be invisible to the daily
            # change analyses, and real lists re-admit names after an
            # absence, so each day removes exactly `churn` members.
            today: list[int] = []
            for pos in rng.sample(range(list_size), min(churn, list_size)):
                today.append(ids[pos])
                if dropped and rng.random() < 0.25:
                    ids[pos] = dropped.pop(rng.randrange(len(dropped)))
                else:
                    ids[pos] = universe[fresh_at]
                    fresh_at += 1
            dropped.extend(today)
        if list_size >= 8:
            # Swap two disjoint rank blocks: membership-preserving rank
            # movement for the correlation/head analyses.
            w = max(1, min(list_size // 8, 1_024))
            a = rng.randrange(0, list_size - 2 * w + 1)
            b = rng.randrange(a + w, list_size - w + 1)
            ids[a:a + w], ids[b:b + w] = ids[b:b + w], ids[a:a + w]
        snapshots.append(ListSnapshot.from_ids(
            provider=provider, date=start_date + dt.timedelta(days=day),
            ids=ids))
        current = ids
    return ListArchive.from_snapshots(snapshots, provider=provider)


def synthetic_archives(scale: str | ScaleConfig, *,
                       seed: int = 20181031,
                       start_date: dt.date = dt.date(2018, 1, 1),
                       providers: Optional[Iterable[str]] = None
                       ) -> dict[str, ListArchive]:
    """Synthetic archives for every provider of a scale, sharing one universe.

    The interned universe is built once and reused, so three 1M-entry
    providers cost one set of name strings; per-provider divergence comes
    from the seeded RNG streams inside :func:`synthetic_archive`.
    """
    scale = get_scale(scale)
    universe = universe_ids(scale.universe_size)
    names = tuple(providers) if providers is not None else scale.providers
    return {provider: synthetic_archive(provider, scale, seed=seed,
                                        start_date=start_date,
                                        universe=universe)
            for provider in names}
