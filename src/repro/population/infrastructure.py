"""Hosting infrastructure of the synthetic Internet.

Defines the hosting providers (with their Autonomous Systems, address
space and optional CDN identity) that domains are placed on.  The
assignment probabilities reproduce the structural findings of
Section 8.1.2: GoDaddy-style mass hosters dominate the general
population, Google hosts a large share of small/private sites, popular
domains concentrate on CDNs (Akamai, Cloudflare, Fastly, Amazon), and
tracker/mobile-API domains cluster on Google/AWS infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.population.categories import DomainCategory
from repro.routing.asdb import AsDatabase


@dataclass(frozen=True)
class HostingProvider:
    """A hosting provider / CDN operating one AS and some address space."""

    name: str
    asn: int
    ipv4_prefix: str
    ipv6_prefix: str
    cdn_provider: Optional[str]
    cname_suffix: Optional[str]
    #: Relative probability weights of being chosen by (tier, kind) below.
    weight_head: float
    weight_tail: float
    weight_tracker: float
    #: Infrastructure quality: multiplies protocol-adoption probabilities.
    modernity: float


#: Provider table.  AS numbers match the ones named in Figure 7d.
PROVIDERS: tuple[HostingProvider, ...] = (
    HostingProvider("Akamai", 20940, "23.0.0.0/12", "2600:1400::/28",
                    "Akamai", "akamaiedge.net",
                    weight_head=22, weight_tail=0.3, weight_tracker=2, modernity=1.6),
    HostingProvider("Cloudflare", 13335, "104.16.0.0/12", "2606:4700::/32",
                    "Cloudflare", "cdn.cloudflare.net",
                    weight_head=16, weight_tail=2.0, weight_tracker=2, modernity=1.7),
    HostingProvider("Google", 15169, "172.217.0.0/16", "2607:f8b0::/32",
                    "Google", "ghs.googlehosted.com",
                    weight_head=14, weight_tail=26.0, weight_tracker=30, modernity=1.5),
    HostingProvider("Amazon-16509", 16509, "52.0.0.0/11", "2600:1f00::/24",
                    "Amazon", "cloudfront.net",
                    weight_head=12, weight_tail=4.0, weight_tracker=26, modernity=1.3),
    HostingProvider("Amazon-14618", 14618, "54.160.0.0/12", "2600:1f18::/33",
                    "Amazon", "elasticbeanstalk.com",
                    weight_head=5, weight_tail=2.0, weight_tracker=10, modernity=1.2),
    HostingProvider("Fastly", 54113, "151.101.0.0/16", "2a04:4e40::/32",
                    "Fastly", "fastly.net",
                    weight_head=9, weight_tail=0.2, weight_tracker=1, modernity=1.8),
    HostingProvider("Microsoft", 8075, "13.64.0.0/11", "2603:1000::/25",
                    "Microsoft Azure", "azureedge.net",
                    weight_head=6, weight_tail=1.5, weight_tracker=4, modernity=1.2),
    HostingProvider("Incapsula", 19551, "45.60.0.0/16", "2a02:e980::/29",
                    "Incapsula", "incapdns.net",
                    weight_head=4, weight_tail=0.1, weight_tracker=1, modernity=1.3),
    HostingProvider("Wordpress", 2635, "192.0.64.0/18", "2620:12a:8000::/44",
                    "WordPress", "wp.com",
                    weight_head=3, weight_tail=2.5, weight_tracker=0, modernity=1.1),
    HostingProvider("Highwinds", 33438, "205.185.208.0/20", "2001:4de0::/29",
                    "Highwinds", "hwcdn.net",
                    weight_head=2, weight_tail=0.1, weight_tracker=0.5, modernity=1.2),
    HostingProvider("GoDaddy", 26496, "160.153.0.0/16", "2603:3000::/24",
                    None, None,
                    weight_head=1, weight_tail=34.0, weight_tracker=0.5, modernity=0.5),
    HostingProvider("OVH", 16276, "51.68.0.0/14", "2001:41d0::/32",
                    None, None,
                    weight_head=2, weight_tail=11.0, weight_tracker=1, modernity=0.8),
    HostingProvider("1&1", 8560, "217.160.0.0/16", "2001:8d8::/32",
                    None, None,
                    weight_head=1, weight_tail=9.0, weight_tracker=0.5, modernity=0.7),
    HostingProvider("Hetzner", 24940, "88.198.0.0/16", "2a01:4f8::/29",
                    None, None,
                    weight_head=1, weight_tail=5.0, weight_tracker=1, modernity=0.9),
    HostingProvider("Confluence", 40034, "162.159.128.0/19", "2a0f:9400::/32",
                    None, None,
                    weight_head=0.5, weight_tail=2.4, weight_tracker=0.5, modernity=0.8),
)


#: Number of generic small hosting providers in the long tail of the
#: hosting market.  Real measurements hit tens of thousands of origin
#: ASes (Table 5's "Unique AS" rows); a few hundred synthetic small
#: hosters reproduce the *relative* AS-diversity differences between the
#: lists and the general population at the library's scale.
SMALL_HOSTER_COUNT = 240


def small_hosting_providers(count: int = SMALL_HOSTER_COUNT) -> tuple[HostingProvider, ...]:
    """Generate the long tail of small hosting providers.

    Each gets its own AS number (64512 + i), a /16 of IPv4 space carved
    from 100.64.0.0/10-style blocks, and modest infrastructure modernity.
    The providers are deterministic, so repeated calls agree.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    providers = []
    for i in range(count):
        providers.append(HostingProvider(
            name=f"SmallHoster-{i:03d}",
            asn=64512 + i,
            ipv4_prefix=f"10.{i % 256}.0.0/16" if i < 256 else f"100.{64 + (i % 64)}.0.0/16",
            ipv6_prefix=f"2001:db8:{i:x}::/48",
            cdn_provider=None,
            cname_suffix=None,
            weight_head=0.0,
            weight_tail=0.0,
            weight_tracker=0.0,
            modernity=0.7 + 0.3 * ((i * 7919) % 100) / 100.0,
        ))
    return tuple(providers)


def provider_weights(tier: str, category: DomainCategory) -> list[float]:
    """Return selection weights over :data:`PROVIDERS` for a domain.

    ``tier`` is ``"head"`` for domains in the popular head of the
    population and ``"tail"`` otherwise; tracker/mobile-API/CDN-infra
    categories use the tracker column regardless of tier.
    """
    if category in (DomainCategory.TRACKER, DomainCategory.MOBILE_API,
                    DomainCategory.CDN_INFRA):
        return [p.weight_tracker for p in PROVIDERS]
    if tier == "head":
        return [p.weight_head for p in PROVIDERS]
    if tier == "tail":
        return [p.weight_tail for p in PROVIDERS]
    raise ValueError(f"unknown tier {tier!r}")


def build_as_database(providers: Sequence[HostingProvider] = PROVIDERS,
                      include_small_hosters: bool = True) -> AsDatabase:
    """Announce every provider's prefixes in a fresh :class:`AsDatabase`."""
    asdb = AsDatabase()
    all_providers = list(providers)
    if include_small_hosters:
        all_providers.extend(small_hosting_providers())
    for provider in all_providers:
        asdb.announce(provider.ipv4_prefix, provider.asn, provider.name)
        asdb.announce(provider.ipv6_prefix, provider.asn, provider.name)
    return asdb


def ipv4_address(provider: HostingProvider, host_index: int) -> str:
    """Deterministically derive an IPv4 address inside the provider prefix."""
    import ipaddress

    network = ipaddress.ip_network(provider.ipv4_prefix)
    offset = (host_index % (network.num_addresses - 2)) + 1
    return str(network.network_address + offset)


def ipv6_address(provider: HostingProvider, host_index: int) -> str:
    """Deterministically derive an IPv6 address inside the provider prefix."""
    import ipaddress

    network = ipaddress.ip_network(provider.ipv6_prefix)
    offset = (host_index % 2_000_000) + 1
    return str(network.network_address + offset)
