"""General-population zone file.

The paper's baseline for "the Internet at large" is the set of all
com/net/org domains obtained from the respective zone files (~157M names,
a 45% sample of all registered domains).  :class:`ZoneFile` provides the
synthetic equivalent: the com/net/org subset of the generated population,
with sampling helpers so measurements over the general population can be
run weekly on a subsample, as the paper does for HTTP/2.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.population.internet import Domain, SyntheticInternet


class ZoneFile:
    """The com/net/org 'general population' of the synthetic Internet."""

    def __init__(self, domains: Sequence[Domain]) -> None:
        self._domains: list[Domain] = list(domains)
        self._names: list[str] = [d.name for d in self._domains]

    @classmethod
    def from_internet(cls, internet: SyntheticInternet,
                      tlds: tuple[str, ...] = ("com", "net", "org")) -> "ZoneFile":
        """Extract the zone for ``tlds`` from a synthetic Internet."""
        return cls([d for d in internet.domains if d.tld in tlds])

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower().rstrip(".") in set(self._names)

    @property
    def domains(self) -> list[Domain]:
        """Domain objects included in the zone."""
        return list(self._domains)

    @property
    def names(self) -> list[str]:
        """Domain names included in the zone."""
        return list(self._names)

    def active_names(self, day: int) -> list[str]:
        """Names of domains already registered by simulation day ``day``."""
        return [d.name for d in self._domains if d.birth_day <= day]

    def sample(self, n: int, seed: Optional[int] = None) -> list[str]:
        """Uniformly sample ``n`` names (without replacement when possible)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        rng = np.random.default_rng(seed)
        if n >= len(self._names):
            return list(self._names)
        idx = rng.choice(len(self._names), size=n, replace=False)
        return [self._names[int(i)] for i in idx]
