"""Domain categories and their behavioural profiles.

The paper explains several of its findings by *what kind of domain* a list
ranks: leisure sites (blogspot, tumblr, Netflix) gain rank on weekends,
office platforms (sharepoint) on weekdays, trackers and ad services are
queried a lot but never "visited", content CDNs receive embedded-content
requests, and Internet-scanning infrastructure shows up in resolver logs
only.  Each category here carries the multipliers that produce those
behaviours in the traffic simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DomainCategory(enum.Enum):
    """Behavioural category of a domain in the synthetic population."""

    PORTAL = "portal"            # search engines, large portals, social networks
    NEWS = "news"                # news and media sites
    SHOPPING = "shopping"        # e-commerce
    LEISURE = "leisure"          # video, gaming, blogs; weekend-heavy
    OFFICE = "office"            # business/productivity platforms; weekday-heavy
    TRACKER = "tracker"          # third-party advertising/tracking services
    CDN_INFRA = "cdn_infra"      # CDN / embedded-content infrastructure names
    MOBILE_API = "mobile_api"    # mobile app backends, push/telemetry services
    SCANNER = "scanner"          # research scanners, NTP/telemetry, IoT endpoints
    SMALL_BUSINESS = "small_business"  # the long tail of small and parked sites
    PERSONAL = "personal"        # private blogs and personal pages

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CategoryProfile:
    """Traffic and infrastructure multipliers of one category.

    Attributes
    ----------
    web_factor:
        Multiplier on a domain's weight in human web-visit traffic
        (Alexa-style panels).  Trackers and infrastructure are ~0.
    dns_factor:
        Multiplier on the domain's weight in resolver query traffic
        (Umbrella-style); trackers and mobile APIs are queried far more
        often than they are consciously visited.
    backlink_factor:
        Multiplier on the domain's inbound-link weight (Majestic-style).
    weekend_factor:
        Traffic multiplier applied on weekend days (>1 = leisure-like,
        <1 = office-like).
    share_of_population:
        Fraction of the synthetic population drawn from this category.
    popularity_boost:
        Bias towards the head of the popularity distribution (categories
        with large boost are over-represented among top domains).
    mobile:
        Whether Lumen-style mobile traffic monitoring would flag the
        domain (Table 3).
    blacklisted:
        Whether hpHosts-style tracker blacklists would flag the domain
        (Table 3).
    """

    category: DomainCategory
    web_factor: float
    dns_factor: float
    backlink_factor: float
    weekend_factor: float
    share_of_population: float
    popularity_boost: float
    mobile: bool = False
    blacklisted: bool = False


#: Behaviour profiles for every category.  ``share_of_population`` sums to 1.
CATEGORY_PROFILES: dict[DomainCategory, CategoryProfile] = {
    profile.category: profile
    for profile in (
        CategoryProfile(DomainCategory.PORTAL, web_factor=1.5, dns_factor=1.3,
                        backlink_factor=1.6, weekend_factor=1.0,
                        share_of_population=0.01, popularity_boost=40.0),
        CategoryProfile(DomainCategory.NEWS, web_factor=1.3, dns_factor=1.0,
                        backlink_factor=1.3, weekend_factor=0.9,
                        share_of_population=0.04, popularity_boost=8.0),
        CategoryProfile(DomainCategory.SHOPPING, web_factor=1.2, dns_factor=0.9,
                        backlink_factor=1.0, weekend_factor=1.15,
                        share_of_population=0.08, popularity_boost=4.0),
        CategoryProfile(DomainCategory.LEISURE, web_factor=1.3, dns_factor=1.0,
                        backlink_factor=0.9, weekend_factor=1.6,
                        share_of_population=0.10, popularity_boost=5.0),
        CategoryProfile(DomainCategory.OFFICE, web_factor=1.0, dns_factor=1.1,
                        backlink_factor=0.8, weekend_factor=0.45,
                        share_of_population=0.05, popularity_boost=6.0),
        CategoryProfile(DomainCategory.TRACKER, web_factor=0.02, dns_factor=3.5,
                        backlink_factor=0.4, weekend_factor=0.95,
                        share_of_population=0.03, popularity_boost=12.0,
                        mobile=True, blacklisted=True),
        CategoryProfile(DomainCategory.CDN_INFRA, web_factor=0.05, dns_factor=2.8,
                        backlink_factor=0.6, weekend_factor=1.05,
                        share_of_population=0.02, popularity_boost=15.0),
        CategoryProfile(DomainCategory.MOBILE_API, web_factor=0.03, dns_factor=2.5,
                        backlink_factor=0.3, weekend_factor=1.2,
                        share_of_population=0.03, popularity_boost=10.0,
                        mobile=True),
        CategoryProfile(DomainCategory.SCANNER, web_factor=0.01, dns_factor=1.8,
                        backlink_factor=0.2, weekend_factor=1.0,
                        share_of_population=0.01, popularity_boost=3.0),
        CategoryProfile(DomainCategory.SMALL_BUSINESS, web_factor=0.8, dns_factor=0.7,
                        backlink_factor=0.9, weekend_factor=0.95,
                        share_of_population=0.43, popularity_boost=1.0),
        CategoryProfile(DomainCategory.PERSONAL, web_factor=0.7, dns_factor=0.6,
                        backlink_factor=0.7, weekend_factor=1.25,
                        share_of_population=0.20, popularity_boost=1.0),
    )
}


def validate_profiles() -> None:
    """Sanity-check the built-in profile table (used by tests)."""
    total_share = sum(p.share_of_population for p in CATEGORY_PROFILES.values())
    if abs(total_share - 1.0) > 1e-9:
        raise ValueError(f"category population shares sum to {total_share}, expected 1.0")
    for profile in CATEGORY_PROFILES.values():
        if min(profile.web_factor, profile.dns_factor, profile.backlink_factor) < 0:
            raise ValueError(f"negative factor in {profile.category}")
        if profile.weekend_factor <= 0:
            raise ValueError(f"non-positive weekend factor in {profile.category}")
