"""Synthetic Internet population.

The paper measures real top lists against the real Internet; offline, this
package substitutes both with a **seeded synthetic Internet**: a population
of domains with correlated properties (popularity, category,
weekday/weekend affinity, IPv6/CAA/TLS/HTTP2/CDN adoption, hosting AS),
plus traffic simulators that produce the three raw signals the list
providers rank on:

* web page visits from a browser-toolbar panel (Alexa),
* DNS queries from a large shared-resolver client base (Umbrella),
* inbound links counted per /24 subnet (Majestic).

Everything is driven by a single :class:`SimulationConfig` and a seed, so
every experiment in the benchmark suite is reproducible bit-for-bit.
"""

from repro.population.categories import CATEGORY_PROFILES, CategoryProfile, DomainCategory
from repro.population.config import SimulationConfig
from repro.population.internet import Domain, SyntheticInternet
from repro.population.traffic import (
    BacklinkSnapshot,
    DnsTraffic,
    InjectedQueries,
    TrafficSimulator,
    WebTraffic,
)
from repro.population.zonefile import ZoneFile

__all__ = [
    "BacklinkSnapshot",
    "CATEGORY_PROFILES",
    "CategoryProfile",
    "DnsTraffic",
    "Domain",
    "DomainCategory",
    "InjectedQueries",
    "SimulationConfig",
    "SyntheticInternet",
    "TrafficSimulator",
    "WebTraffic",
    "ZoneFile",
]
