"""The synthetic Internet: domains, their properties and infrastructure.

:class:`SyntheticInternet` generates, from a :class:`SimulationConfig` and
its seed, a population of domains whose *joint* distribution of
popularity, category, weekday/weekend behaviour, protocol adoption and
hosting reproduces the structural relationships the paper measures:

* popularity follows a power law (Section 6.1);
* protocol adoption (IPv6, CAA, TLS, HSTS, HTTP/2) rises steeply with
  popularity, so any top list exaggerates adoption relative to the
  general population (Section 8, Table 5);
* popular domains sit on CDNs and modern clouds, the long tail on mass
  hosters, trackers and mobile APIs on Google/AWS (Figure 7);
* leisure domains gain traffic on weekends, office platforms lose it
  (Section 6.2);
* a small share of names do not resolve, and resolver traffic contains
  junk names under invalid TLDs (Section 5.1, 8.1.1).

The generated artefacts are: the domain table, an FQDN catalogue (for
DNS-query-level ranking à la Umbrella), an authoritative
:class:`~repro.dns.zone.ZoneDatabase`, a web
:class:`~repro.web.server.HostRegistry`, and a Route-Views-style
:class:`~repro.routing.asdb.AsDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.domain.psl import PublicSuffixList
from repro.domain.tld import TldRegistry
from repro.dns.zone import ZoneDatabase
from repro.population.categories import CATEGORY_PROFILES, DomainCategory
from repro.population.config import SimulationConfig
from repro.population.infrastructure import (
    PROVIDERS,
    HostingProvider,
    build_as_database,
    ipv4_address,
    ipv6_address,
    provider_weights,
    small_hosting_providers,
)
from repro.routing.asdb import AsDatabase
from repro.web.hsts import HstsPolicy
from repro.web.server import HostRegistry, WebHost

#: TLD selection weights for generated domain names.
_TLD_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("com", 0.46), ("net", 0.07), ("org", 0.06),
    ("de", 0.05), ("uk", 0.03), ("ru", 0.03), ("br", 0.02), ("jp", 0.02),
    ("fr", 0.02), ("it", 0.015), ("nl", 0.015), ("pl", 0.01), ("in", 0.015),
    ("cn", 0.02), ("es", 0.01), ("ca", 0.01), ("au", 0.01), ("ir", 0.01),
    ("io", 0.02), ("co", 0.015), ("me", 0.01), ("tv", 0.005), ("info", 0.015),
    ("biz", 0.01), ("xyz", 0.02), ("online", 0.01), ("site", 0.01),
    ("top", 0.01), ("club", 0.01), ("shop", 0.01), ("app", 0.01),
)

#: Well-known head domains seeded into every population, with their category.
#: Includes the six example domains of Table 4.
_SEED_DOMAINS: tuple[tuple[str, DomainCategory], ...] = (
    ("google.com", DomainCategory.PORTAL),
    ("youtube.com", DomainCategory.LEISURE),
    ("facebook.com", DomainCategory.PORTAL),
    ("netflix.com", DomainCategory.LEISURE),
    ("wikipedia.org", DomainCategory.NEWS),
    ("amazon.com", DomainCategory.SHOPPING),
    ("twitter.com", DomainCategory.PORTAL),
    ("instagram.com", DomainCategory.LEISURE),
    ("microsoft.com", DomainCategory.OFFICE),
    ("sharepoint.com", DomainCategory.OFFICE),
    ("office.com", DomainCategory.OFFICE),
    ("tumblr.com", DomainCategory.LEISURE),
    ("blogspot.com", DomainCategory.LEISURE),
    ("ampproject.org", DomainCategory.CDN_INFRA),
    ("nflxso.net", DomainCategory.MOBILE_API),
    ("nessus.org", DomainCategory.SCANNER),
    ("doubleclick.net", DomainCategory.TRACKER),
    ("googlesyndication.com", DomainCategory.TRACKER),
    ("scorecardresearch.com", DomainCategory.TRACKER),
    ("jetblue.com", DomainCategory.SHOPPING),
    ("mdc.edu", DomainCategory.SMALL_BUSINESS),
    ("puresight.com", DomainCategory.SMALL_BUSINESS),
    ("baidu.com", DomainCategory.PORTAL),
    ("yahoo.com", DomainCategory.PORTAL),
    ("reddit.com", DomainCategory.LEISURE),
    ("ebay.com", DomainCategory.SHOPPING),
    ("linkedin.com", DomainCategory.OFFICE),
    ("apple.com", DomainCategory.SHOPPING),
    ("akamaihd.net", DomainCategory.CDN_INFRA),
    ("windowsupdate.com", DomainCategory.MOBILE_API),
)

#: Popularity multipliers of the seed domains (descending): the first few
#: are orders of magnitude more popular than the tail of the seed set.
_SEED_BOOSTS: tuple[float, ...] = (
    4000, 3000, 2500, 1200, 1000, 950, 900, 850, 800, 700, 650, 600, 580,
    560, 540, 500, 480, 460, 440, 2.0, 0.35, 0.06, 420, 400, 380, 360, 340,
    320, 300, 280,
)

#: Invalid-TLD junk names that show up in resolver traffic (Section 5.1
#: lists examples such as ``instagram``, ``localdomain``, ``server``,
#: ``cpe``, ``0``, ``big``, ``cs``).
_JUNK_TLDS: tuple[str, ...] = (
    "localdomain", "local", "server", "cpe", "0", "big", "cs", "internal",
    "lan", "home", "corp", "workgroup", "belkin", "dlink", "router",
    "localhost", "intranet", "domain", "invalid", "example-internal",
)

#: Heavily-queried names of discontinued services (the paper's example is
#: ``teredo.ipv6.microsoft.com``): they resolve to NXDOMAIN yet rank highly
#: in DNS-based lists.
_DISCONTINUED_FQDNS: tuple[str, ...] = (
    "teredo.ipv6.microsoft.com",
    "isatap.ipv6.microsoft.com",
    "time.windows-legacy.net",
    "update.old-antivirus.com",
)

_NAME_SYLLABLES = (
    "al", "an", "ar", "ba", "be", "bo", "ca", "ce", "co", "da", "de", "di",
    "do", "el", "en", "er", "fa", "fi", "fo", "ga", "ge", "go", "ha", "he",
    "ho", "in", "is", "ka", "ke", "ko", "la", "le", "li", "lo", "ma", "me",
    "mi", "mo", "na", "ne", "no", "or", "pa", "pe", "po", "ra", "re", "ri",
    "ro", "sa", "se", "si", "so", "ta", "te", "ti", "to", "ur", "va", "ve",
    "vi", "vo", "wa", "we", "za", "ze",
)

_SUBDOMAIN_LABELS = (
    "www", "api", "cdn", "static", "img", "mail", "m", "app", "login",
    "shop", "blog", "news", "video", "media", "assets", "edge", "push",
    "metrics", "telemetry", "events", "beacon", "ads", "track", "collect",
    "config", "sync", "update", "dl", "files", "ws", "gateway", "device",
    "node", "pool", "mta", "smtp", "ns1", "ns2", "vpn", "portal",
)


@dataclass(frozen=True)
class Subdomain:
    """One FQDN below a base domain, with its share of the domain's queries.

    ``exists`` is False for stale endpoints (decommissioned API hosts,
    renamed services) that legacy clients keep querying — a source of the
    high NXDOMAIN share of DNS-query-based lists (Section 8.1.1).
    """

    fqdn: str
    depth: int
    dns_share: float
    exists: bool = True


@dataclass
class Domain:
    """A base domain of the synthetic population and all its properties."""

    index: int
    name: str
    tld: str
    category: DomainCategory
    birth_day: int
    exists: bool
    dead: bool
    base_weight: float
    weekend_factor: float
    provider: HostingProvider
    ipv4: str
    ipv6: Optional[str]
    ipv6_enabled: bool
    caa_enabled: bool
    cdn_provider: Optional[str]
    cdn_cname: Optional[str]
    tls_enabled: bool
    hsts_enabled: bool
    http2_enabled: bool
    subdomains: tuple[Subdomain, ...]

    @property
    def sld(self) -> str:
        """Label left of the public suffix (group key of Section 6.2)."""
        return self.name.split(".")[0]

    @property
    def is_com_net_org(self) -> bool:
        """Whether the domain belongs to the paper's 'general population'."""
        return self.tld in ("com", "net", "org")

    @property
    def mobile(self) -> bool:
        """Whether Lumen-style mobile monitoring would flag this domain."""
        return CATEGORY_PROFILES[self.category].mobile

    @property
    def blacklisted(self) -> bool:
        """Whether hpHosts-style blacklists would flag this domain."""
        return CATEGORY_PROFILES[self.category].blacklisted


@dataclass(frozen=True)
class FqdnEntry:
    """One entry of the FQDN catalogue the DNS traffic is drawn over."""

    fqdn: str
    domain_index: int  # -1 for junk names not tied to a population domain
    depth: int
    exists: bool


class SyntheticInternet:
    """Seeded synthetic Internet with domains, DNS, web hosts and routing."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.psl = PublicSuffixList()
        self.tld_registry = TldRegistry()
        self.domains: list[Domain] = []
        self.fqdns: list[FqdnEntry] = []
        self._fqdn_weights: np.ndarray = np.empty(0)
        self._build_domains()
        self._build_fqdn_catalogue()
        self.asdb: AsDatabase = build_as_database()
        self.zone: ZoneDatabase = self._build_zone()
        self.hosts: HostRegistry = self._build_hosts()

    # ------------------------------------------------------------------
    # Domain generation
    # ------------------------------------------------------------------
    def _random_name(self, existing: set[str]) -> tuple[str, str]:
        """Generate a fresh ``(base_domain, tld)`` pair."""
        rng = self._rng
        if not hasattr(self, "_tld_names"):
            self._tld_names = [t for t, _ in _TLD_WEIGHTS]
            probs = np.array([w for _, w in _TLD_WEIGHTS], dtype=float)
            self._tld_cumprobs = np.cumsum(probs / probs.sum())
        for _ in range(64):
            n_syllables = int(rng.integers(2, 5))
            idx = rng.integers(0, len(_NAME_SYLLABLES), size=n_syllables)
            label = "".join(_NAME_SYLLABLES[int(i)] for i in idx)
            if rng.random() < 0.15:
                label += str(rng.integers(1, 99))
            tld = self._tld_names[int(np.searchsorted(self._tld_cumprobs, rng.random()))]
            name = f"{label}.{tld}"
            if name not in existing:
                return name, tld
        # Fall back to an index-suffixed name; collisions are now impossible.
        label = f"domain{len(existing)}"
        tld = "com"
        return f"{label}.{tld}", tld

    def _alias_name(self, base_sld: str, existing: set[str]) -> Optional[tuple[str, str]]:
        """Derive an alias (same SLD, different TLD) for a brand domain."""
        rng = self._rng
        tlds = [t for t, _ in _TLD_WEIGHTS]
        order = rng.permutation(len(tlds))
        tlds = [tlds[int(i)] for i in order]
        for tld in tlds:
            name = f"{base_sld}.{tld}"
            if name not in existing:
                return name, tld
        return None

    def _pick_categories(self, n: int) -> list[DomainCategory]:
        profiles = list(CATEGORY_PROFILES.values())
        probs = np.array([p.share_of_population for p in profiles])
        probs = probs / probs.sum()
        picks = self._rng.choice(len(profiles), size=n, p=probs)
        return [profiles[i].category for i in picks]

    def _build_domains(self) -> None:
        config = self.config
        rng = self._rng
        n_total = config.total_domains()
        n_seed = min(len(_SEED_DOMAINS), n_total)

        names: list[str] = []
        tlds: list[str] = []
        categories: list[DomainCategory] = []
        existing: set[str] = set()

        for name, category in _SEED_DOMAINS[:n_seed]:
            names.append(name)
            tlds.append(name.rsplit(".", 1)[-1])
            categories.append(category)
            existing.add(name)

        generated_categories = self._pick_categories(n_total - n_seed)
        alias_budget = int(0.04 * n_total)
        aliases_created = 0
        for i in range(n_total - n_seed):
            # Occasionally reuse an earlier SLD under a different TLD to
            # create domain aliases (google.com / google.de style, ~4-5%).
            if aliases_created < alias_budget and names and rng.random() < 0.05:
                source = names[int(rng.integers(0, len(names)))]
                alias = self._alias_name(source.split(".")[0], existing)
                if alias is not None:
                    name, tld = alias
                    names.append(name)
                    tlds.append(tld)
                    categories.append(generated_categories[i])
                    existing.add(name)
                    aliases_created += 1
                    continue
            name, tld = self._random_name(existing)
            names.append(name)
            tlds.append(tld)
            categories.append(generated_categories[i])
            existing.add(name)

        # Popularity: Zipf weights over a random permutation, boosted by the
        # category's head-affinity, with the seed domains pinned to the top.
        ranks = rng.permutation(n_total) + 1
        weights = ranks.astype(float) ** (-config.zipf_exponent)
        boost = np.array([
            CATEGORY_PROFILES[cat].popularity_boost ** rng.uniform(0.4, 1.0)
            for cat in categories
        ])
        weights = weights * boost
        # Pin the seed domains to the head: the most boosted seed sits a
        # comfortable factor above the best generated domain, and the rest
        # scale down proportionally (jetblue/mdc/puresight end up mid-list
        # and near the list boundary, reproducing Table 4's spread).
        head_weight = float(weights[n_seed:].max()) * 50.0 if n_total > n_seed else 1.0
        for i in range(n_seed):
            weights[i] = head_weight * _SEED_BOOSTS[i] / max(_SEED_BOOSTS)
        weights = weights / weights.sum()

        # Popularity percentile (1.0 = most popular) drives adoption and tier.
        order = np.argsort(-weights)
        percentile = np.empty(n_total)
        percentile[order] = 1.0 - np.arange(n_total) / max(1, n_total - 1)

        # Birth days: the initial population exists from day 0; the rest are
        # born uniformly over the simulated period.
        birth_days = np.zeros(n_total, dtype=int)
        if n_total > config.n_domains:
            born = np.sort(rng.integers(1, config.n_days + 1,
                                        size=n_total - config.n_domains))
            birth_days[config.n_domains:] = born

        exists_draw = rng.random(n_total)
        dead_draw = rng.random(n_total)

        weekend_jitter = rng.lognormal(mean=0.0, sigma=0.08, size=n_total)

        self.domains = []
        for i in range(n_total):
            category = categories[i]
            profile = CATEGORY_PROFILES[category]
            pct = float(percentile[i])
            tier = "head" if pct > 0.90 else "tail"
            provider = self._pick_provider(tier, category)
            modernity = provider.modernity

            is_seed = i < n_seed
            # Dead-but-still-linked domains concentrate among formerly
            # popular sites, which is what keeps them inside link-based
            # lists (Majestic's elevated NXDOMAIN share, Section 8.1.1).
            dead = (not is_seed) and dead_draw[i] < config.dead_domain_share * 3.0 * pct ** 2
            exists = (not dead) and (is_seed or exists_draw[i] >= config.nxdomain_population_share)

            ipv6_enabled = exists and rng.random() < self._adoption(0.030, 0.45, 12.0, pct, modernity)
            caa_enabled = exists and rng.random() < self._adoption(0.001, 0.45, 60.0, pct, modernity)
            tls_enabled = exists and rng.random() < self._adoption(0.32, 0.60, 4.0, pct, modernity)
            hsts_enabled = tls_enabled and rng.random() < self._adoption(0.06, 0.30, 8.0, pct, modernity)
            uses_cdn_cname = (
                exists and provider.cdn_provider is not None
                and rng.random() < (0.80 if tier == "head" else 0.06)
            )
            http2_enabled = tls_enabled and rng.random() < self._adoption(
                0.05, 0.55, 10.0, pct, modernity * (1.6 if uses_cdn_cname else 1.0))

            cdn_provider = provider.cdn_provider if uses_cdn_cname else None
            cdn_cname = None
            if uses_cdn_cname and provider.cname_suffix:
                cdn_cname = f"{names[i].split('.')[0]}.{provider.cname_suffix}"

            weekend_factor = profile.weekend_factor * float(weekend_jitter[i])

            domain = Domain(
                index=i,
                name=names[i],
                tld=tlds[i],
                category=category,
                birth_day=int(birth_days[i]),
                exists=bool(exists),
                dead=bool(dead),
                base_weight=float(weights[i]),
                weekend_factor=weekend_factor,
                provider=provider,
                ipv4=ipv4_address(provider, i),
                ipv6=ipv6_address(provider, i) if ipv6_enabled else None,
                ipv6_enabled=bool(ipv6_enabled),
                caa_enabled=bool(caa_enabled),
                cdn_provider=cdn_provider,
                cdn_cname=cdn_cname,
                tls_enabled=bool(tls_enabled),
                hsts_enabled=bool(hsts_enabled),
                http2_enabled=bool(http2_enabled),
                subdomains=self._make_subdomains(names[i], category),
            )
            self.domains.append(domain)

        self._percentile = percentile

    def _pick_provider(self, tier: str, category: DomainCategory) -> HostingProvider:
        rng = self._rng
        if not hasattr(self, "_small_hosters"):
            self._small_hosters = small_hosting_providers()
        # A large slice of the long tail sits on small, otherwise anonymous
        # hosting providers; popular domains almost never do.  This is what
        # makes the general population hit far more origin ASes than any
        # top list (Table 5's "Unique AS" rows).
        small_probability = {"head": 0.03, "tail": 0.40}[tier]
        if category in (DomainCategory.TRACKER, DomainCategory.MOBILE_API,
                        DomainCategory.CDN_INFRA):
            small_probability = 0.05
        if rng.random() < small_probability:
            return self._small_hosters[int(rng.integers(0, len(self._small_hosters)))]
        weights = np.array(provider_weights(tier, category), dtype=float)
        weights = weights / weights.sum()
        idx = int(rng.choice(len(PROVIDERS), p=weights))
        return PROVIDERS[idx]

    @staticmethod
    def _adoption(base: float, amplitude: float, decay: float, pct: float,
                  modernity: float) -> float:
        """Adoption probability for a domain at popularity percentile ``pct``.

        Adoption falls off exponentially away from the head of the
        popularity distribution: ``base + amplitude * exp(-decay * (1 -
        pct))``, scaled by the hosting infrastructure's modernity.  Large
        ``decay`` produces the orders-of-magnitude head-vs-population gaps
        the paper reports for CAA; small ``decay`` the gentler gaps of TLS.
        """
        p = base + amplitude * np.exp(-decay * (1.0 - pct)) * min(1.5, modernity) / 1.5
        return float(min(0.99, max(0.0, p)))

    def _make_subdomains(self, name: str, category: DomainCategory) -> tuple[Subdomain, ...]:
        """Generate the FQDNs below ``name`` and their DNS-query shares."""
        rng = self._rng
        subdomains: list[Subdomain] = []
        if category in (DomainCategory.TRACKER, DomainCategory.MOBILE_API,
                        DomainCategory.CDN_INFRA):
            count = int(rng.integers(4, 9))
            max_extra_depth = 4
            stale_probability = 0.18
        elif category in (DomainCategory.PORTAL, DomainCategory.LEISURE,
                          DomainCategory.OFFICE):
            count = int(rng.integers(2, 5))
            max_extra_depth = 2
            stale_probability = 0.08
        else:
            count = int(rng.integers(0, 2))
            max_extra_depth = 1
            stale_probability = 0.05
        labels = list(rng.choice(_SUBDOMAIN_LABELS, size=min(count, len(_SUBDOMAIN_LABELS)),
                                 replace=False))
        if "www" not in labels and rng.random() < 0.8:
            labels.insert(0, "www")
        for label in labels:
            depth = 1
            fqdn = f"{label}.{name}"
            if max_extra_depth > 1 and rng.random() < 0.35:
                extra = int(rng.integers(1, max_extra_depth))
                for level in range(extra):
                    part = str(rng.choice(_SUBDOMAIN_LABELS))
                    if rng.random() < 0.3:
                        part = f"{part}{rng.integers(0, 100)}"
                    fqdn = f"{part}.{fqdn}"
                    depth += 1
            share = float(rng.uniform(0.05, 0.9)) * (1.5 if label == "www" else 1.0)
            exists = label == "www" or rng.random() >= stale_probability
            subdomains.append(Subdomain(fqdn=fqdn, depth=depth, dns_share=share,
                                        exists=exists))
        return tuple(subdomains)

    # ------------------------------------------------------------------
    # FQDN catalogue (DNS-query universe)
    # ------------------------------------------------------------------
    def _build_fqdn_catalogue(self) -> None:
        rng = self._rng
        entries: list[FqdnEntry] = []
        weights: list[float] = []
        seen: set[str] = set()

        def append(entry: FqdnEntry, weight: float) -> None:
            if entry.fqdn in seen:
                return
            seen.add(entry.fqdn)
            entries.append(entry)
            weights.append(weight)

        for domain in self.domains:
            profile = CATEGORY_PROFILES[domain.category]
            dns_weight = domain.base_weight * profile.dns_factor
            if not domain.exists:
                # Shut-down domains keep receiving queries from stale links
                # and legacy clients, but far fewer than a live service.
                dns_weight *= 0.2
            append(FqdnEntry(fqdn=domain.name, domain_index=domain.index,
                             depth=0, exists=domain.exists), dns_weight)
            for sub in domain.subdomains:
                # Stale endpoints are only queried by lingering legacy
                # clients, so their query weight is a fraction of a live
                # subdomain's.
                weight = dns_weight * sub.dns_share * (1.0 if sub.exists else 0.15)
                append(FqdnEntry(fqdn=sub.fqdn, domain_index=domain.index,
                                 depth=sub.depth,
                                 exists=domain.exists and sub.exists),
                       weight)

        # Junk names under invalid TLDs: misconfigured resolvers/hosts query
        # them broadly, so they end up in DNS-based rankings.
        total_weight = float(np.sum(weights))
        junk_budget = total_weight * self.config.invalid_tld_fraction
        n_junk = max(len(_JUNK_TLDS), int(0.015 * len(self.domains)))
        junk_weights = rng.dirichlet(np.ones(n_junk) * 3.0) * junk_budget
        # Junk names are queried by many misconfigured clients, but never by
        # as many distinct clients as genuinely popular services: clamp their
        # weights to the upper-middle of the organic weight distribution so
        # they populate the body of a DNS-based Top 1M without reaching any
        # Top 1k (matching Section 5.1's observations).
        organic = np.array([w for w in weights if w > 0])
        if organic.size:
            lower = float(np.quantile(organic, 0.90))
            upper = float(np.quantile(organic, 0.965))
            junk_weights = np.clip(junk_weights, lower, upper)
        for j in range(n_junk):
            tld = _JUNK_TLDS[j % len(_JUNK_TLDS)]
            if j < len(_JUNK_TLDS):
                fqdn = tld
                depth = 0
            else:
                label = "".join(
                    _NAME_SYLLABLES[int(k)]
                    for k in rng.integers(0, len(_NAME_SYLLABLES), size=2))
                fqdn = f"{label}{j}.{tld}"
                depth = 1
            append(FqdnEntry(fqdn=fqdn, domain_index=-1, depth=depth, exists=False),
                   float(junk_weights[j]))

        # Discontinued but heavily queried services (legacy clients).
        for i, fqdn in enumerate(_DISCONTINUED_FQDNS):
            append(FqdnEntry(fqdn=fqdn, domain_index=-1, depth=fqdn.count("."),
                             exists=False), total_weight * 0.004 / (i + 1))

        self.fqdns = entries
        self._fqdn_weights = np.array(weights, dtype=float)

    # ------------------------------------------------------------------
    # Zone, hosts, routing
    # ------------------------------------------------------------------
    def _build_zone(self) -> ZoneDatabase:
        zone = ZoneDatabase()
        for domain in self.domains:
            if not domain.exists:
                continue
            zone.add_address(domain.name, domain.ipv4, ttl=300)
            if domain.ipv6_enabled and domain.ipv6:
                zone.add_address(domain.name, domain.ipv6, ttl=300)
            if domain.caa_enabled:
                zone.add_caa(domain.name, "issue", "letsencrypt.org")
            if domain.cdn_cname:
                zone.add_cname(f"www.{domain.name}", domain.cdn_cname, ttl=300)
                zone.add_address(domain.cdn_cname, domain.ipv4, ttl=60)
                if domain.ipv6_enabled and domain.ipv6:
                    zone.add_address(domain.cdn_cname, domain.ipv6, ttl=60)
            else:
                zone.add_address(f"www.{domain.name}", domain.ipv4, ttl=300)
                if domain.ipv6_enabled and domain.ipv6:
                    zone.add_address(f"www.{domain.name}", domain.ipv6, ttl=300)
            for sub in domain.subdomains:
                if sub.fqdn == f"www.{domain.name}" or not sub.exists:
                    continue
                if domain.cdn_cname:
                    # CDN customers typically point their service hostnames
                    # at the CDN edge as well (static.example.com ->
                    # example.akamaiedge.net), which is how CDN use becomes
                    # visible when resolving FQDN-level list entries.
                    zone.add_cname(sub.fqdn, domain.cdn_cname, ttl=300)
                    continue
                zone.add_address(sub.fqdn, domain.ipv4, ttl=300)
                if domain.ipv6_enabled and domain.ipv6:
                    zone.add_address(sub.fqdn, domain.ipv6, ttl=300)
        return zone

    def _build_hosts(self) -> HostRegistry:
        registry = HostRegistry()
        for domain in self.domains:
            if not domain.exists:
                continue
            hsts = HstsPolicy(max_age=31536000, include_subdomains=True) if domain.hsts_enabled else None
            host = WebHost(
                domain=domain.name,
                tls_enabled=domain.tls_enabled,
                tls_version="TLSv1.2" if domain.tls_enabled else None,
                hsts_policy=hsts,
                http2_enabled=domain.http2_enabled,
                serves_content=True,
            )
            registry.add(host)
            # Live subdomains are served by the same infrastructure, so
            # probing an FQDN (as one must for the DNS-based list) reaches
            # an equivalent endpoint.
            for sub in domain.subdomains:
                if not sub.exists or sub.fqdn == f"www.{domain.name}":
                    continue
                registry.add(WebHost(
                    domain=sub.fqdn,
                    tls_enabled=domain.tls_enabled,
                    tls_version="TLSv1.2" if domain.tls_enabled else None,
                    hsts_policy=hsts,
                    http2_enabled=domain.http2_enabled,
                    serves_content=True,
                ))
        return registry

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.domains)

    def domain_by_name(self, name: str) -> Optional[Domain]:
        """Return the domain object for a base-domain name, if it exists."""
        if not hasattr(self, "_by_name"):
            self._by_name = {d.name: d for d in self.domains}
        return self._by_name.get(name.strip().lower().rstrip("."))

    def popularity_percentile(self, index: int) -> float:
        """Popularity percentile (1.0 = most popular) of domain ``index``."""
        return float(self._percentile[index])

    def active_indices(self, day: int) -> np.ndarray:
        """Indices of domains already born on simulation day ``day``."""
        births = np.array([d.birth_day for d in self.domains])
        return np.where(births <= day)[0]

    def fqdn_weights(self) -> np.ndarray:
        """Raw DNS-query weights of the FQDN catalogue (not normalised)."""
        return self._fqdn_weights.copy()

    def com_net_org_domains(self) -> list[Domain]:
        """The paper's 'general population': all com/net/org base domains."""
        return [d for d in self.domains if d.is_com_net_org]

    def seed_domain_names(self) -> Sequence[str]:
        """Names of the well-known seeded domains (Table 4 examples)."""
        return [name for name, _ in _SEED_DOMAINS[: min(len(_SEED_DOMAINS), len(self.domains))]]
