"""Simulation configuration.

All scale parameters of the synthetic Internet live here so that tests use
small populations, benchmarks medium ones, and a user with patience can
approach the paper's Top-1M scale by only changing numbers.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of the synthetic Internet and its traffic simulation.

    Attributes
    ----------
    seed:
        Master RNG seed; every derived generator is seeded from it.
    n_domains:
        Number of base domains in the initial population (the paper's
        ~157M com/net/org domains plus other TLDs, scaled down).
    new_domains_per_day:
        Genuinely new domains entering the population each simulated day.
    n_days:
        Length of the simulated observation period (the JOINT dataset).
    start_date:
        Calendar date of simulation day 0 (drives weekday/weekend logic).
    list_size:
        Size of the "Top 1M" lists produced by the providers (scaled).
    top_k:
        Size of the "Top 1k" head subset used throughout the paper.
    zipf_exponent:
        Exponent of the popularity power law.
    alexa_panel_users / alexa_visits_per_user:
        Size of the toolbar panel and mean daily page visits per panel
        member; together they set Alexa's sampling noise.
    alexa_window_days:
        Length of Alexa's rank-averaging sliding window before its
        January-2018 style change.
    alexa_change_day:
        Simulation day on which Alexa switches to a 1-day window
        (``None`` disables the change).
    umbrella_clients / umbrella_queries_per_client:
        Number of resolver client /24s and mean daily queries per client.
    umbrella_window_days:
        Length of the resolver ranking's smoothing window (1 day in the
        default regime — the real list is recomputed daily from raw
        traffic, which is what makes it the most volatile of the three).
    majestic_window_days:
        Length of Majestic's backlink counting window (90 days in the
        paper, scaled down by default).
    invalid_tld_fraction:
        Fraction of DNS query volume directed at junk names under invalid
        TLDs (misconfigured hosts; ends up in Umbrella only).
    nxdomain_population_share:
        Fraction of registered population domains that do not resolve.
    dead_domain_share:
        Fraction of formerly-popular domains that have been shut down but
        still receive backlinks/queries (Majestic/Umbrella NXDOMAIN
        sources).
    sampling_noise_scale:
        Scale of the day-to-day sampling noise of the panel/resolver
        signals.  1.0 is the full Poisson/binomial noise of independent
        daily samples; smaller values shrink each day's deviation from
        its expectation towards zero, producing the calmer churn regime
        of a large, well-aggregated panel (0.0 makes daily ranks fully
        deterministic).  Majestic's random-walk drift is controlled
        separately by ``backlink_walk_sigma``.
    weekend_amplitude:
        Strength of the weekday/weekend traffic modulation.  1.0 keeps
        each domain's configured weekend factor as-is, 0.0 flattens the
        week entirely, values above 1.0 exaggerate the weekly pattern
        (the ``weekend_heavy`` scenario profile).
    backlink_walk_sigma:
        Daily standard deviation of the multiplicative log-drift of
        Majestic-style backlink counts (0.005 in the default regime).
    """

    seed: int = 20181031
    n_domains: int = 30_000
    new_domains_per_day: int = 60
    n_days: int = 28
    start_date: dt.date = field(default_factory=lambda: dt.date(2017, 6, 6))
    list_size: int = 5_000
    top_k: int = 500
    zipf_exponent: float = 0.95
    # Alexa-style panel.
    alexa_panel_users: int = 150_000
    alexa_visits_per_user: float = 25.0
    alexa_window_days: int = 10
    alexa_change_day: int | None = None
    # Umbrella-style resolver client base.
    umbrella_clients: int = 80_000
    umbrella_queries_per_client: float = 40.0
    umbrella_window_days: int = 1
    # Majestic-style crawler.
    majestic_window_days: int = 14
    majestic_linking_subnets: int = 2_500_000
    # Pathologies.
    invalid_tld_fraction: float = 0.025
    nxdomain_population_share: float = 0.006
    dead_domain_share: float = 0.012
    # Churn/diurnal regime.
    sampling_noise_scale: float = 1.0
    weekend_amplitude: float = 1.0
    backlink_walk_sigma: float = 0.005
    # Weekend behaviour.
    weekend_days: tuple[int, ...] = (5, 6)

    def __post_init__(self) -> None:
        if self.n_domains <= 0:
            raise ValueError("n_domains must be positive")
        if self.list_size <= 0 or self.list_size > self.total_domains():
            raise ValueError("list_size must be positive and fit the population")
        if self.top_k <= 0 or self.top_k > self.list_size:
            raise ValueError("top_k must be positive and at most list_size")
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if not 0 <= self.invalid_tld_fraction < 1:
            raise ValueError("invalid_tld_fraction must be in [0, 1)")
        if not 0 <= self.nxdomain_population_share < 1:
            raise ValueError("nxdomain_population_share must be in [0, 1)")
        if (self.alexa_window_days <= 0 or self.majestic_window_days <= 0
                or self.umbrella_window_days <= 0):
            raise ValueError("window lengths must be positive")
        if self.sampling_noise_scale < 0:
            raise ValueError("sampling_noise_scale must be non-negative")
        if self.weekend_amplitude < 0:
            raise ValueError("weekend_amplitude must be non-negative")
        if self.backlink_walk_sigma < 0:
            raise ValueError("backlink_walk_sigma must be non-negative")

    def total_domains(self) -> int:
        """Population size including domains born during the simulation."""
        return self.n_domains + self.new_domains_per_day * self.n_days

    def date_of(self, day: int) -> dt.date:
        """Calendar date of simulation day ``day`` (0-based)."""
        return self.start_date + dt.timedelta(days=day)

    def weekday_of(self, day: int) -> int:
        """Python weekday (Monday=0) of simulation day ``day``."""
        return self.date_of(day).weekday()

    def is_weekend(self, day: int) -> bool:
        """Whether simulation day ``day`` falls on a weekend."""
        return self.weekday_of(day) in self.weekend_days

    @classmethod
    def small(cls, **overrides: object) -> "SimulationConfig":
        """A small configuration for unit tests (seconds, not minutes)."""
        defaults: dict[str, object] = dict(
            n_domains=3_000, new_domains_per_day=20, n_days=14,
            list_size=800, top_k=100,
            alexa_panel_users=25_000, alexa_visits_per_user=25.0,
            umbrella_clients=20_000, umbrella_queries_per_client=40.0,
            majestic_linking_subnets=400_000,
            alexa_window_days=5, majestic_window_days=7,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def benchmark(cls, **overrides: object) -> "SimulationConfig":
        """The default configuration used by the benchmark harness."""
        defaults: dict[str, object] = dict(
            n_domains=20_000, new_domains_per_day=50, n_days=28,
            list_size=4_000, top_k=400,
            alexa_panel_users=120_000, alexa_visits_per_user=25.0,
            umbrella_clients=150_000, umbrella_queries_per_client=40.0,
            majestic_linking_subnets=2_000_000,
            alexa_window_days=10, majestic_window_days=14,
            alexa_change_day=14,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]
