"""Traffic simulation: the raw signals top lists are built from.

For every simulated day the :class:`TrafficSimulator` produces

* :class:`WebTraffic` — page visits and unique visitors observed by a
  browser-toolbar panel (what Alexa ranks on),
* :class:`DnsTraffic` — unique resolver clients and query counts per FQDN
  (what Umbrella ranks on), optionally with injected measurement traffic
  (the Section 7.2 RIPE-Atlas experiment),
* :class:`BacklinkSnapshot` — the number of /24 subnets linking to each
  domain (what Majestic ranks on).

All sampling is vectorised with numpy and seeded per ``(seed, day,
stream)`` so that any day can be regenerated independently and
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.population.categories import CATEGORY_PROFILES
from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet

#: Fraction of an injected client's daily queries that reach the ranked
#: resolver (cache hits and anycast spread make it less than 1).
QUERY_CAPTURE_RATE = 0.55


@dataclass(frozen=True)
class InjectedQueries:
    """Synthetic measurement traffic towards one DNS name (Section 7.2).

    ``n_clients`` distinct sources each issue ``queries_per_client``
    queries per day for ``fqdn``; ``ttl`` is carried so the TTL-sweep
    experiment can assert it has (almost) no effect on the resulting rank.
    """

    fqdn: str
    n_clients: int
    queries_per_client: float
    ttl: int = 300

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            raise ValueError("n_clients must be non-negative")
        if self.queries_per_client < 0:
            raise ValueError("queries_per_client must be non-negative")


@dataclass
class WebTraffic:
    """Panel-observed web activity for one day (per base domain index)."""

    day: int
    visits: np.ndarray
    unique_visitors: np.ndarray

    def score(self) -> np.ndarray:
        """Alexa-style day score: combines page views and unique visitors."""
        return self.unique_visitors.astype(float) + 0.2 * self.visits.astype(float)


@dataclass
class DnsTraffic:
    """Resolver-observed DNS activity for one day (per FQDN catalogue index)."""

    day: int
    unique_clients: np.ndarray
    queries: np.ndarray
    injected: Mapping[str, tuple[int, int]] = field(default_factory=dict)

    def score(self) -> np.ndarray:
        """Umbrella-style day score: dominated by unique client count."""
        return self.unique_clients.astype(float) + 0.05 * np.sqrt(self.queries.astype(float))

    def injected_score(self, fqdn: str) -> float:
        """Score of an injected name (0.0 when it received no traffic)."""
        if fqdn not in self.injected:
            return 0.0
        unique, queries = self.injected[fqdn]
        return float(unique) + 0.05 * float(np.sqrt(queries))


@dataclass
class BacklinkSnapshot:
    """Crawler-observed inbound links for one day (per base domain index)."""

    day: int
    linking_subnets: np.ndarray

    def score(self) -> np.ndarray:
        """Majestic-style day score: the /24-subnet count itself."""
        return self.linking_subnets.astype(float)


class TrafficSimulator:
    """Generates daily web, DNS and backlink signals for a synthetic Internet."""

    def __init__(self, internet: SyntheticInternet, config: SimulationConfig | None = None) -> None:
        self.internet = internet
        self.config = config or internet.config
        self._prepare_domain_arrays()
        self._prepare_fqdn_arrays()

    # ------------------------------------------------------------------
    # Precomputed arrays
    # ------------------------------------------------------------------
    def _prepare_domain_arrays(self) -> None:
        domains = self.internet.domains
        n = len(domains)
        self._dom_birth = np.array([d.birth_day for d in domains])
        self._dom_exists = np.array([d.exists for d in domains], dtype=bool)
        self._dom_dead = np.array([d.dead for d in domains], dtype=bool)
        self._dom_weekend = np.array([d.weekend_factor for d in domains])
        web = np.empty(n)
        backlink = np.empty(n)
        for i, domain in enumerate(domains):
            profile = CATEGORY_PROFILES[domain.category]
            web[i] = domain.base_weight * profile.web_factor
            backlink[i] = domain.base_weight * profile.backlink_factor
        # Only resolving domains attract human web visits; dead domains keep
        # their backlinks (Majestic reacts slowly to domain closure).
        self._dom_web_weight = web * self._dom_exists
        # Link counts are flatter than visit counts: even the last listed
        # domain has a few dozen referring subnets, which is what makes a
        # backlink-based list stable.  A sub-linear transform models that.
        backlink_weight = (backlink ** 0.6) * (self._dom_exists | self._dom_dead)
        total = backlink_weight.sum()
        scale = self.config.majestic_linking_subnets / total if total > 0 else 0.0
        self._dom_backlinks_base = backlink_weight * scale
        #: Per-day cumulative log-drift of the backlink random walk.
        self._backlink_walks: dict[int, np.ndarray] = {}

    def _prepare_fqdn_arrays(self) -> None:
        fqdns = self.internet.fqdns
        self._fqdn_weight = self.internet.fqdn_weights()
        parent = np.array([f.domain_index for f in fqdns])
        self._fqdn_parent = parent
        weekend = np.ones(len(fqdns))
        birth = np.zeros(len(fqdns), dtype=int)
        has_parent = parent >= 0
        weekend[has_parent] = self._dom_weekend[parent[has_parent]]
        birth[has_parent] = self._dom_birth[parent[has_parent]]
        self._fqdn_weekend = weekend
        self._fqdn_birth = birth

    def _rng(self, day: int, stream: int) -> np.random.Generator:
        return np.random.default_rng([self.config.seed, day, stream])

    def _day_factor(self, day: int, weekend_factors: np.ndarray) -> np.ndarray:
        """Per-entity traffic multiplier for ``day`` (weekend modulation).

        ``weekend_amplitude`` scales each domain's deviation from a flat
        week; at the default 1.0 the factors are used exactly as
        configured (the branch keeps that path bit-identical).
        """
        amplitude = self.config.weekend_amplitude
        if self.config.is_weekend(day):
            if amplitude == 1.0:
                return weekend_factors
            return (1.0 + amplitude * (weekend_factors - 1.0)).clip(0.0, None)
        # Weekdays carry a mild complementary boost for office-like domains
        # so that total traffic stays roughly constant across the week.
        return 1.0 + 0.25 * (amplitude * (1.0 - weekend_factors)).clip(-1.0, 1.0)

    def _damp_noise(self, sampled: np.ndarray, expected: np.ndarray) -> np.ndarray:
        """Shrink ``sampled`` towards ``expected`` by ``sampling_noise_scale``.

        The random draw itself is unchanged (so the default scale of 1.0
        reproduces the historical streams exactly); only the deviation
        from the expectation is rescaled, then rounded back to counts.
        """
        scale = self.config.sampling_noise_scale
        if scale == 1.0:
            return sampled
        blended = expected + scale * (sampled.astype(float) - expected)
        return np.rint(blended).clip(0.0, None).astype(np.int64)

    # ------------------------------------------------------------------
    # Daily signals
    # ------------------------------------------------------------------
    def web_day(self, day: int) -> WebTraffic:
        """Simulate one day of panel-observed web traffic."""
        self._check_day(day)
        rng = self._rng(day, stream=1)
        active = self._dom_birth <= day
        factor = self._day_factor(day, self._dom_weekend)
        intensity = self._dom_web_weight * factor * active
        total = intensity.sum()
        if total <= 0:
            zeros = np.zeros(len(intensity), dtype=np.int64)
            return WebTraffic(day=day, visits=zeros, unique_visitors=zeros.copy())
        p = intensity / total
        panel = self.config.alexa_panel_users
        expected_visits = panel * self.config.alexa_visits_per_user * p
        visits = rng.poisson(expected_visits)
        # A panel member visiting a domain at least once counts as a unique
        # visitor; the per-user visit intensity is expected_visits / panel.
        per_user = expected_visits / max(panel, 1)
        hit_probability = 1.0 - np.exp(-per_user)
        unique = rng.binomial(panel, hit_probability)
        visits = self._damp_noise(visits, expected_visits)
        unique = self._damp_noise(unique, panel * hit_probability)
        return WebTraffic(day=day, visits=visits, unique_visitors=unique)

    def dns_day(self, day: int, injected: Sequence[InjectedQueries] = ()) -> DnsTraffic:
        """Simulate one day of resolver-observed DNS traffic."""
        self._check_day(day)
        rng = self._rng(day, stream=2)
        active = self._fqdn_birth <= day
        factor = self._day_factor(day, self._fqdn_weekend)
        intensity = self._fqdn_weight * factor * active
        total = intensity.sum()
        clients = self.config.umbrella_clients
        if total <= 0 or clients <= 0:
            zeros = np.zeros(len(intensity), dtype=np.int64)
            return DnsTraffic(day=day, unique_clients=zeros, queries=zeros.copy())
        p = intensity / total
        expected_queries = clients * self.config.umbrella_queries_per_client * p
        per_client = expected_queries / clients
        hit_probability = 1.0 - np.exp(-per_client)
        unique = rng.binomial(clients, hit_probability)
        queries = rng.poisson(expected_queries)
        unique = self._damp_noise(unique, clients * hit_probability)
        queries = self._damp_noise(queries, expected_queries)
        injected_counts: dict[str, tuple[int, int]] = {}
        for injection in injected:
            if injection.n_clients == 0 or injection.queries_per_client == 0:
                injected_counts[injection.fqdn.lower()] = (0, 0)
                continue
            capture = 1.0 - (1.0 - QUERY_CAPTURE_RATE) ** injection.queries_per_client
            inj_unique = int(rng.binomial(injection.n_clients, capture))
            inj_queries = int(rng.poisson(
                injection.n_clients * injection.queries_per_client * QUERY_CAPTURE_RATE))
            injected_counts[injection.fqdn.lower()] = (inj_unique, inj_queries)
        return DnsTraffic(day=day, unique_clients=unique, queries=queries,
                          injected=injected_counts)

    def _backlink_walk(self, day: int) -> np.ndarray:
        """Cumulative log-drift of the backlink counts up to ``day``.

        Link counts evolve as a slow multiplicative random walk: the count
        for a domain on consecutive days shares almost all of its
        underlying crawl data (Majestic uses ~90 days of crawls), so
        day-over-day changes are tiny and *persistent*, unlike the
        independent sampling noise of panel- or resolver-based signals.
        """
        if day in self._backlink_walks:
            return self._backlink_walks[day]
        if day == 0:
            walk = np.zeros(len(self._dom_backlinks_base))
        else:
            previous = self._backlink_walk(day - 1)
            step = self._rng(day, stream=3).normal(0.0, self.config.backlink_walk_sigma,
                                                   size=previous.shape)
            walk = previous + step
        self._backlink_walks[day] = walk
        return walk

    def backlinks_day(self, day: int) -> BacklinkSnapshot:
        """Simulate one day of crawler-observed backlink counts."""
        self._check_day(day)
        base = self._dom_backlinks_base.copy()
        # Newly created domains accumulate links over the crawler's window.
        age = day - self._dom_birth
        ramp = np.clip(age / max(1, self.config.majestic_window_days), 0.0, 1.0)
        ramp[self._dom_birth == 0] = 1.0
        base *= ramp
        # Dead domains slowly lose links as pages get updated.
        base[self._dom_dead] *= 0.995 ** max(0, day)
        counts = np.floor(base * np.exp(self._backlink_walk(day))).astype(np.int64)
        return BacklinkSnapshot(day=day, linking_subnets=counts)

    def _check_day(self, day: int) -> None:
        if day < 0:
            raise ValueError("day must be non-negative")
