"""Majestic-Million-style top list provider.

Majestic ranks sites by the number of /24 IPv4 subnets containing at
least one page linking to the site, computed over ~90 days of crawl data.
Link counts move slowly, so the list is by far the most stable of the
three, reacts slowly to domain closure (dead domains linger, raising its
NXDOMAIN share above the general population), and shows no weekly
pattern.

The provider ranks base domains by the simulated backlink snapshot,
optionally normalising by /24 subnet (the paper notes Majestic switched
from raw link counts to subnet counts; the ablation benchmark flips this
switch).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet
from repro.population.traffic import TrafficSimulator
from repro.providers.base import ListProvider, ListSnapshot


class MajesticProvider(ListProvider):
    """Backlink-subnet-count ranking over base domains (crawler-style)."""

    name = "majestic"

    def __init__(
        self,
        internet: SyntheticInternet,
        traffic: TrafficSimulator,
        list_size: Optional[int] = None,
        window_days: Optional[int] = None,
        normalise_by_subnet: bool = True,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.internet = internet
        self.traffic = traffic
        self.config = config or internet.config
        self.list_size = list_size or self.config.list_size
        self.window_days = window_days or self.config.majestic_window_days
        self.normalise_by_subnet = normalise_by_subnet
        self._day_scores: dict[int, np.ndarray] = {}
        self._names = np.array([d.name for d in internet.domains])
        # Raw (un-normalised) link counts are dominated by a few heavy
        # linkers: model them as a noisy amplification of the subnet count.
        self._amplification = np.random.default_rng(self.config.seed + 7).lognormal(
            mean=1.2, sigma=0.9, size=len(internet.domains))

    def _score_for_day(self, day: int) -> np.ndarray:
        if day not in self._day_scores:
            subnets = self.traffic.backlinks_day(day).score()
            if self.normalise_by_subnet:
                self._day_scores[day] = subnets
            else:
                self._day_scores[day] = subnets * self._amplification
        return self._day_scores[day]

    def windowed_score(self, day: int) -> np.ndarray:
        """Average backlink score over the crawl window ending on ``day``."""
        first = max(0, day - self.window_days + 1)
        days = list(range(first, day + 1))
        total = np.zeros(len(self.internet.domains))
        for d in days:
            total += self._score_for_day(d)
        return total / len(days)

    def snapshot(self, day: int) -> ListSnapshot:
        """The Majestic-style list published on simulation day ``day``."""
        scores = self.windowed_score(day)
        order = np.lexsort((np.arange(len(scores)), -scores))
        entries: list[str] = []
        for idx in order:
            if scores[int(idx)] <= 0 or len(entries) >= self.list_size:
                break
            entries.append(str(self._names[int(idx)]))
        return ListSnapshot(provider=self.name, date=self.config.date_of(day),
                            entries=tuple(entries))
