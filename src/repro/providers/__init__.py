"""Top-list providers.

Simulators of the three list-creation mechanisms the paper studies
(Section 2 and 7):

* :class:`AlexaProvider` — ranks base domains by browser-panel web
  activity, averaged over a sliding window; the window can be shortened
  mid-simulation to reproduce Alexa's January-2018 change.
* :class:`UmbrellaProvider` — ranks fully-qualified DNS names by the
  number of distinct resolver clients querying them (OpenDNS-style),
  which lets junk names, trackers and deep subdomains into the list.
* :class:`MajesticProvider` — ranks base domains by the number of /24
  subnets linking to them over a long window, making the list very
  stable and slow to react.

Plus the snapshot/archive containers shared by all providers and the
:func:`run_simulation` orchestrator that produces the JOINT-style dataset
used by the analyses and benchmarks.
"""

from repro.providers.alexa import AlexaProvider
from repro.providers.base import ListArchive, ListProvider, ListSnapshot, joint_period
from repro.providers.majestic import MajesticProvider
from repro.providers.simulation import SimulationRun, run_simulation
from repro.providers.umbrella import UmbrellaProvider

__all__ = [
    "AlexaProvider",
    "ListArchive",
    "ListProvider",
    "ListSnapshot",
    "MajesticProvider",
    "SimulationRun",
    "UmbrellaProvider",
    "joint_period",
    "run_simulation",
]
