"""List snapshots, archives and the provider interface.

A *snapshot* is one day's ranked list (what you would download from a
provider that day); an *archive* is a day-indexed series of snapshots
(the datasets of Table 2); a *provider* generates snapshots from the
simulated traffic.  Snapshots serialise to the same ``rank,domain`` CSV
format the real lists use, so the analysis code also runs on downloaded
real snapshots.
"""

from __future__ import annotations

import abc
import bisect
import csv
import datetime as dt
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence


@dataclass(frozen=True)
class ListSnapshot:
    """One day's ranked top list."""

    provider: str
    date: dt.date
    entries: tuple[str, ...]

    def __post_init__(self) -> None:
        # Validate uniqueness via the per-instance domain-set cache so a
        # 1M-entry snapshot allocates its set exactly once.
        if len(self.domain_set()) != len(self.entries):
            raise ValueError("snapshot entries must be unique")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.entries)

    def __contains__(self, domain: str) -> bool:
        return domain in self.domain_set()

    def top(self, n: int) -> "ListSnapshot":
        """Return a snapshot restricted to the first ``n`` entries.

        Heads are cached per instance and returned object-identical on
        repeated calls, so every analysis that slices the same snapshot
        (``top_n=...``) shares one set of derived caches.  A prefix of a
        unique list is unique, so validation is skipped, and rank lookups
        on a head are answered from the parent's rank index.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n >= len(self.entries):
            return self
        cache = self.__dict__.setdefault("_top_cache", {})
        child = cache.get(n)
        if child is None:
            child = object.__new__(ListSnapshot)
            object.__setattr__(child, "provider", self.provider)
            object.__setattr__(child, "date", self.date)
            object.__setattr__(child, "entries", self.entries[:n])
            # Weak, so a head kept alive on its own does not pin the full
            # parent snapshot (and its entries tuple) in memory.
            child.__dict__["_top_parent"] = weakref.ref(self)
            cache[n] = child
        return child

    def domain_set(self) -> frozenset[str]:
        """The set of domains in the snapshot (cached per instance)."""
        cached = self.__dict__.get("_domain_set")
        if cached is None:
            cached = frozenset(self.entries)
            self.__dict__["_domain_set"] = cached
        return cached

    def rank_of(self, domain: str) -> Optional[int]:
        """1-based rank of ``domain`` or ``None`` when not listed."""
        ranks = self.__dict__.get("_ranks")
        if ranks is None:
            parent_ref = self.__dict__.get("_top_parent")
            parent = parent_ref() if parent_ref is not None else None
            if parent is not None:
                # A head shares its parent's rank index: the first n ranks
                # are identical, so one dict serves every prefix length.
                rank = parent.rank_of(domain)
                if rank is not None and rank <= len(self.entries):
                    return rank
                return None
            ranks = {name: idx + 1 for idx, name in enumerate(self.entries)}
            self.__dict__["_ranks"] = ranks
        return ranks.get(domain)

    def __getstate__(self) -> dict:
        # Derived caches (domain set, rank index, heads, normalised sets,
        # the weak parent link) are pure accelerators and partly
        # unpicklable; serialise the dataclass fields only.
        return {"provider": self.provider, "date": self.date, "entries": self.entries}

    # -- serialisation ----------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write the snapshot in the providers' ``rank,domain`` CSV format."""
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for rank, domain in enumerate(self.entries, start=1):
                writer.writerow([rank, domain])

    @classmethod
    def from_csv(cls, path: str | Path, provider: str,
                 date: Optional[dt.date] = None) -> "ListSnapshot":
        """Read a ``rank,domain`` CSV file (rank column optional).

        ``date`` is required (snapshots are date-keyed and must not
        depend on when the file happens to be parsed); it is optional in
        the signature only for backwards-compatible call sites, which now
        get a clear error instead of a silent "today" stamp.
        """
        if date is None:
            raise ValueError(
                "a snapshot date is required; pass date= (or use "
                "repro.listio.read_top_list, which derives it from the file name)")
        path = Path(path)
        entries: list[str] = []
        with path.open(newline="", encoding="utf-8") as handle:
            for row in csv.reader(handle):
                if not row:
                    continue
                entries.append(row[-1].strip().lower())
        return cls(provider=provider, date=date, entries=tuple(entries))


@dataclass
class ListArchive:
    """A day-indexed series of snapshots from one provider.

    The archive maintains a sorted-date index incrementally (one bisect
    insertion per :meth:`add`) instead of re-sorting on every
    :meth:`dates`/:meth:`__getitem__` call, and hosts a derived-data cache
    (see :mod:`repro.core.cache`) that is dropped whenever the archive
    mutates.
    """

    provider: str
    _snapshots: dict[dt.date, ListSnapshot] = field(default_factory=dict)
    _dates: list[dt.date] = field(default_factory=list, init=False,
                                  repr=False, compare=False)

    def __post_init__(self) -> None:
        self._dates = sorted(self._snapshots)

    def add(self, snapshot: ListSnapshot) -> None:
        """Add a snapshot (provider names must match)."""
        if snapshot.provider != self.provider:
            raise ValueError(
                f"snapshot provider {snapshot.provider!r} != archive provider {self.provider!r}")
        if snapshot.date not in self._snapshots:
            bisect.insort(self._dates, snapshot.date)
        self._snapshots[snapshot.date] = snapshot
        # Any derived per-archive analysis caches are now stale.
        self.__dict__.pop("_analysis_cache", None)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[ListSnapshot]:
        for date in self._dates:
            yield self._snapshots[date]

    def __getitem__(self, key: dt.date | int) -> ListSnapshot:
        if isinstance(key, int):
            return self._snapshots[self._dates[key]]
        return self._snapshots[key]

    def __contains__(self, date: dt.date) -> bool:
        return date in self._snapshots

    def __getstate__(self) -> dict:
        # The analysis cache is a pure accelerator holding unpicklable
        # read-only views; rebuild lazily after unpickling/copying.
        state = self.__dict__.copy()
        state.pop("_analysis_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        # Decouple the mutable containers so a copy.copy'd archive cannot
        # mutate the original's snapshots behind its analysis cache.
        self.__dict__.update(state)
        self._snapshots = dict(self._snapshots)
        self._dates = list(self._dates)

    def dates(self) -> list[dt.date]:
        """Sorted dates with a snapshot."""
        return list(self._dates)

    def snapshots(self) -> list[ListSnapshot]:
        """Snapshots in date order."""
        return [self._snapshots[d] for d in self._dates]

    def period(self, start: dt.date, end: dt.date) -> "ListArchive":
        """Return the sub-archive with ``start <= date <= end``."""
        if start > end:
            raise ValueError("start must not be after end")
        sub = ListArchive(provider=self.provider)
        for date, snapshot in self._snapshots.items():
            if start <= date <= end:
                sub.add(snapshot)
        return sub

    def top(self, n: int) -> "ListArchive":
        """Return an archive of the Top-``n`` head of every snapshot."""
        sub = ListArchive(provider=self.provider)
        for snapshot in self:
            sub.add(snapshot.top(n))
        return sub

    def to_directory(self, directory: str | Path) -> None:
        """Write one ``<provider>-<date>.csv`` per snapshot into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for snapshot in self:
            snapshot.to_csv(directory / f"{self.provider}-{snapshot.date.isoformat()}.csv")

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[ListSnapshot],
                       provider: Optional[str] = None) -> "ListArchive":
        """Build an archive from snapshots (provider inferred if omitted).

        All snapshots must share one provider name; an empty iterable
        requires an explicit ``provider``.
        """
        snapshots = list(snapshots)
        if provider is None:
            if not snapshots:
                raise ValueError("provider is required for an empty archive")
            provider = snapshots[0].provider
        archive = cls(provider=provider)
        for snapshot in snapshots:
            archive.add(snapshot)
        return archive

    @classmethod
    def from_directory(cls, directory: str | Path, provider: str) -> "ListArchive":
        """Load an archive written by :meth:`to_directory`."""
        directory = Path(directory)
        archive = cls(provider=provider)
        for path in sorted(directory.glob(f"{provider}-*.csv")):
            date_text = path.stem.replace(f"{provider}-", "")
            date = dt.date.fromisoformat(date_text)
            archive.add(ListSnapshot.from_csv(path, provider=provider, date=date))
        return archive


def joint_period(archives: Iterable[ListArchive]) -> tuple[Optional[dt.date], Optional[dt.date]]:
    """Return the (start, end) dates covered by *all* archives (JOINT dataset).

    Returns ``(None, None)`` when the archives share no dates.
    """
    date_sets = [set(archive.dates()) for archive in archives]
    if not date_sets:
        return None, None
    common = set.intersection(*date_sets)
    if not common:
        return None, None
    return min(common), max(common)


class ListProvider(abc.ABC):
    """Interface of a top-list generator."""

    #: Human-readable provider name used on snapshots.
    name: str = "provider"

    @abc.abstractmethod
    def snapshot(self, day: int) -> ListSnapshot:
        """Generate the list as published on simulation day ``day``."""

    def generate_archive(self, days: Sequence[int]) -> ListArchive:
        """Generate snapshots for every day in ``days``."""
        archive = ListArchive(provider=self.name)
        for day in days:
            archive.add(self.snapshot(day))
        return archive
