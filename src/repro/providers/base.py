"""List snapshots, archives and the provider interface.

A *snapshot* is one day's ranked list (what you would download from a
provider that day); an *archive* is a day-indexed series of snapshots
(the datasets of Table 2); a *provider* generates snapshots from the
simulated traffic.  Snapshots serialise to the same ``rank,domain`` CSV
format the real lists use, so the analysis code also runs on downloaded
real snapshots.

Snapshots are **columnar**: the canonical storage is a rank-ordered
``uint32`` id column into the process-wide
:class:`~repro.interning.DomainInterner`, not a string tuple.  Every
set/rank operation (``domain_set``, ``rank_of``, ``top``) runs on ids;
the string accessors (``entries``, iteration, ``__contains__``) are
preserved for compatibility and materialised lazily, so a snapshot
loaded from the binary archive store never allocates a single domain
string unless somebody actually asks for one.
"""

from __future__ import annotations

import abc
import bisect
import csv
import datetime as dt
import re
import weakref
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.domain.name import InvalidDomainError, normalise
from repro.interning import default_interner

#: Characters a label may hold after normalisation on the *wire* ingest
#: path: LDH plus underscore (real lists carry ``_dmarc``-style names,
#: and IDNs arrive as punycode).  Stricter than :func:`normalise`, which
#: only enforces structural limits.
_WIRE_LABEL_RE = re.compile(r"[^a-z0-9_-]")


def clean_wire_entry(raw: object) -> str:
    """Normalise and charset-validate one untrusted list entry.

    The process interner and the store's domain table are append-only,
    so wire input must be rejected *before* it can occupy id space.
    Beyond :func:`~repro.domain.name.normalise`'s structural checks,
    every label is restricted to ``[a-z0-9_-]`` — arbitrary printable
    junk fails here instead of being persisted forever.
    """
    if not isinstance(raw, str):
        raise InvalidDomainError(
            f"list entries must be strings (got {type(raw).__name__})")
    name = normalise(raw)
    for label in name.split("."):
        if _WIRE_LABEL_RE.search(label):
            raise InvalidDomainError(
                f"label {label!r} contains characters outside [a-z0-9_-]")
    return name


class ListSnapshot:
    """One day's ranked top list (immutable, interned-id columnar)."""

    def __init__(self, provider: str, date: dt.date,
                 entries: Sequence[str] = ()) -> None:
        # Materialise before interning: a one-shot iterable must feed the
        # id column and the string view from the same pass.
        entries = tuple(entries)
        state = self.__dict__
        state["provider"] = provider
        state["date"] = date
        state["_ids"] = default_interner().intern_many(entries)
        # Keep the caller's strings as the materialised view: they exist
        # anyway, and ``entries`` then costs nothing to serve.
        state["_entries"] = entries
        self._validate()

    @classmethod
    def from_ids(cls, provider: str, date: dt.date,
                 ids: "array | memoryview") -> "ListSnapshot":
        """Build a snapshot straight from an interned id column.

        The fast lane of :mod:`repro.listio` and the archive store: no
        string tuple is created (``entries`` stays lazy).  ``ids`` is
        adopted, not copied — the caller must not mutate it afterwards —
        and may be a ``memoryview`` window over a larger uint32 column
        (the zero-copy rank-band path), which behaves identically for
        every read operation.
        """
        snapshot = object.__new__(cls)
        state = snapshot.__dict__
        state["provider"] = provider
        state["date"] = date
        state["_ids"] = ids
        snapshot._validate()
        return snapshot

    @classmethod
    def from_raw_entries(cls, provider: str, date: dt.date,
                         entries: Iterable[str]) -> "ListSnapshot":
        """Build a snapshot from *untrusted* wire entries (ingest path).

        The process interner is append-only — nothing interned is ever
        evicted — so arbitrary network input must be validated **before**
        it occupies id space forever.  Each entry goes through
        :func:`clean_wire_entry` (normalised, structurally checked, and
        charset-restricted to ``[a-z0-9_-]`` labels) *first*; a rejected
        body interns nothing (validation runs as a whole pass before the
        first ``intern`` call), so a fuzzed request cannot grow the
        table.  Duplicates keep their first rank, matching the CSV
        parsers.
        """
        cleaned = [clean_wire_entry(raw) for raw in entries]
        return cls.from_cleaned_entries(provider, date, cleaned)

    @classmethod
    def from_cleaned_entries(cls, provider: str, date: dt.date,
                             cleaned: Sequence[str]) -> "ListSnapshot":
        """Build a snapshot from *already normalised* names.

        The second stage of :meth:`from_raw_entries`, for callers that
        validated entries themselves (the serving layer's CSV ingest
        normalises per row to decide what to skip, and must not pay for
        normalising everything a second time).  Duplicates keep their
        first rank.
        """
        if not cleaned:
            raise InvalidDomainError("snapshot has no valid entries")
        intern = default_interner().intern
        ids = array("I")
        seen: set[int] = set()
        for name in cleaned:
            domain_id = intern(name)
            if domain_id in seen:
                continue
            seen.add(domain_id)
            ids.append(domain_id)
        return cls.from_ids(provider=provider, date=date, ids=ids)

    @classmethod
    def from_wire_rows(cls, provider: str, date: dt.date,
                       rows: Iterable[str]) -> tuple["ListSnapshot", int]:
        """Build a snapshot from a *stream* of untrusted rows (skip mode).

        The streaming lane of CSV ingest: rows flow one at a time
        through :func:`clean_wire_entry` → intern → id column, so a
        million-entry day is never materialised as a Python string list.
        Rows that fail wire validation are skipped (their count is
        returned); duplicates keep their first rank, uncounted —
        exactly the semantics of cleaning eagerly and calling
        :meth:`from_cleaned_entries`.  Because rejection happens per
        row, every valid row ahead of (or behind) junk still interns;
        callers wanting all-or-nothing validation must use
        :meth:`from_raw_entries` instead.
        """
        intern = default_interner().intern
        ids = array("I")
        seen: set[int] = set()
        skipped = 0
        for raw in rows:
            try:
                name = clean_wire_entry(raw)
            except InvalidDomainError:
                skipped += 1
                continue
            domain_id = intern(name)
            if domain_id in seen:
                continue
            seen.add(domain_id)
            ids.append(domain_id)
        if not ids:
            raise InvalidDomainError("snapshot has no valid entries")
        return cls.from_ids(provider=provider, date=date, ids=ids), skipped

    def _validate(self) -> None:
        # Uniqueness on the raw ids with a *transient* set: routing this
        # through the id-set cache would keep every snapshot's full-size
        # frozenset resident from construction on (gigabytes across a
        # 1M-entry month) when most store/ingest snapshots never need
        # set analytics at all.  ``id_set()`` stays lazily cached for
        # the callers that do.
        ids = self._ids
        if len(set(ids)) != len(ids):
            raise ValueError("snapshot entries must be unique")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"ListSnapshot is immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"ListSnapshot is immutable (cannot delete {name!r})")

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, ListSnapshot):
            return (self.provider == other.provider and self.date == other.date
                    and self._ids == other._ids)
        return NotImplemented

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.provider, self.date, self._ids.tobytes()))
            self.__dict__["_hash"] = cached
        return cached

    def __repr__(self) -> str:
        return (f"ListSnapshot(provider={self.provider!r}, date={self.date!r}, "
                f"entries=<{len(self._ids)} domains>)")

    # -- accessors --------------------------------------------------------
    @property
    def entries(self) -> tuple[str, ...]:
        """The ranked domain strings (materialised lazily, then cached)."""
        cached = self.__dict__.get("_entries")
        if cached is None:
            cached = default_interner().domains(self._ids)
            self.__dict__["_entries"] = cached
        return cached

    def entry_ids(self) -> "array | memoryview":
        """The rank-ordered interned-id column (do not mutate).

        A full snapshot returns its ``array``; a :meth:`top` head
        returns the zero-copy ``memoryview`` window it is backed by —
        iteration, indexing, ``len`` and buffer reads behave alike.
        """
        return self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[str]:
        return iter(self.entries)

    def __contains__(self, domain: str) -> bool:
        domain_id = default_interner().id_of(domain)
        return domain_id is not None and domain_id in self.id_set()

    def top(self, n: int) -> "ListSnapshot":
        """Return a snapshot restricted to the first ``n`` entries.

        Heads are cached per instance and returned object-identical on
        repeated calls, so every analysis that slices the same snapshot
        (``top_n=...``) shares one set of derived caches.  A head is an
        id-array slice; a prefix of a unique list is unique, so
        validation is skipped, and rank lookups on a head are answered
        from the parent's rank index.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n >= len(self._ids):
            return self
        cache = self.__dict__.setdefault("_top_cache", {})
        child = cache.get(n)
        if child is None:
            child = object.__new__(ListSnapshot)
            state = child.__dict__
            state["provider"] = self.provider
            state["date"] = self.date
            # Zero-copy: the head's id column is a memoryview window over
            # the parent's buffer (slicing a memoryview is again a view),
            # so a 1M-entry snapshot's every head shares one allocation.
            state["_ids"] = self.id_window(0, n)
            parent_entries = self.__dict__.get("_entries")
            if parent_entries is not None:
                state["_entries"] = parent_entries[:n]
            # Weak, so a head kept alive on its own pins only the
            # parent's id buffer (through the window above), never the
            # parent snapshot object and its derived caches.
            state["_top_parent"] = weakref.ref(self)
            cache[n] = child
        return child

    def id_window(self, start: int, stop: int) -> memoryview:
        """A zero-copy uint32 window over ranks ``start+1 .. stop``.

        The rank-band accessor: the returned ``memoryview`` aliases the
        snapshot's id column (no bytes are copied, whatever the band
        size) and supports iteration, indexing, ``len`` and equality
        against id arrays.  Do not mutate it.
        """
        ids = self._ids
        view = ids if isinstance(ids, memoryview) else memoryview(ids)
        return view[start:stop]

    def id_set(self) -> frozenset[int]:
        """The set of interned ids in the snapshot (cached per instance).

        Built through the interner's shared boxed ints, so consecutive
        days' sets reference one int object per domain.
        """
        cached = self.__dict__.get("_id_set")
        if cached is None:
            cached = default_interner().id_set(self._ids)
            self.__dict__["_id_set"] = cached
        return cached

    def domain_set(self) -> frozenset[str]:
        """The set of domain strings (compatibility view, cached)."""
        cached = self.__dict__.get("_domain_set")
        if cached is None:
            cached = frozenset(self.entries)
            self.__dict__["_domain_set"] = cached
        return cached

    def rank_of(self, domain: str) -> Optional[int]:
        """1-based rank of ``domain`` or ``None`` when not listed."""
        domain_id = default_interner().id_of(domain)
        if domain_id is None:
            return None
        return self.rank_of_id(domain_id)

    def rank_of_id(self, domain_id: int) -> Optional[int]:
        """1-based rank of an interned id or ``None`` when not listed."""
        ranks = self.__dict__.get("_ranks")
        if ranks is None:
            parent_ref = self.__dict__.get("_top_parent")
            parent = parent_ref() if parent_ref is not None else None
            if parent is not None:
                # A head shares its parent's rank index: the first n ranks
                # are identical, so one dict serves every prefix length.
                rank = parent.rank_of_id(domain_id)
                if rank is not None and rank <= len(self._ids):
                    return rank
                return None
            ranks = {identifier: index + 1
                     for index, identifier in enumerate(self._ids)}
            self.__dict__["_ranks"] = ranks
        return ranks.get(domain_id)

    # -- pickling ---------------------------------------------------------
    def __getstate__(self) -> dict:
        # Interned ids are process-local, and the derived caches (id/
        # domain sets, rank index, heads, the weak parent link) are pure
        # accelerators; serialise the logical fields as strings only.
        return {"provider": self.provider, "date": self.date,
                "entries": self.entries}

    def __setstate__(self, state: dict) -> None:
        ours = self.__dict__
        ours["provider"] = state["provider"]
        ours["date"] = state["date"]
        entries = tuple(state["entries"])
        ours["_ids"] = default_interner().intern_many(entries)
        ours["_entries"] = entries

    # -- serialisation ----------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write the snapshot in the providers' ``rank,domain`` CSV format."""
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for rank, domain in enumerate(self.entries, start=1):
                writer.writerow([rank, domain])

    @classmethod
    def from_csv(cls, path: str | Path, provider: str,
                 date: Optional[dt.date] = None) -> "ListSnapshot":
        """Read a ``rank,domain`` CSV file (rank column optional).

        ``date`` is required (snapshots are date-keyed and must not
        depend on when the file happens to be parsed); it is optional in
        the signature only for backwards-compatible call sites, which now
        get a clear error instead of a silent "today" stamp.
        """
        if date is None:
            raise ValueError(
                "a snapshot date is required; pass date= (or use "
                "repro.listio.read_top_list, which derives it from the file name)")
        path = Path(path)
        entries: list[str] = []
        with path.open(newline="", encoding="utf-8") as handle:
            for row in csv.reader(handle):
                if not row:
                    continue
                entries.append(row[-1].strip().lower())
        return cls(provider=provider, date=date, entries=tuple(entries))


@dataclass
class ListArchive:
    """A day-indexed series of snapshots from one provider.

    The archive maintains a sorted-date index incrementally (one bisect
    insertion per :meth:`add`) instead of re-sorting on every
    :meth:`dates`/:meth:`__getitem__` call, and hosts a derived-data cache
    (see :mod:`repro.core.cache`) that is dropped whenever the archive
    mutates.
    """

    provider: str
    _snapshots: dict[dt.date, ListSnapshot] = field(default_factory=dict)
    _dates: list[dt.date] = field(default_factory=list, init=False,
                                  repr=False, compare=False)

    def __post_init__(self) -> None:
        self._dates = sorted(self._snapshots)

    def add(self, snapshot: ListSnapshot) -> None:
        """Add a snapshot (provider names must match, dates must be new).

        A duplicate ``(provider, date)`` is rejected: silently shadowing
        an already-archived day would invalidate every derived cache and
        any index built over the archive without a trace.  Build a new
        archive (e.g. via :meth:`from_snapshots`) to replace a day.
        """
        if snapshot.provider != self.provider:
            raise ValueError(
                f"snapshot provider {snapshot.provider!r} != archive provider {self.provider!r}")
        if snapshot.date in self._snapshots:
            raise ValueError(
                f"archive already holds a {self.provider!r} snapshot for "
                f"{snapshot.date}; build a new archive to replace a day")
        bisect.insort(self._dates, snapshot.date)
        self._snapshots[snapshot.date] = snapshot
        # Any derived per-archive analysis caches are now stale.
        self.__dict__.pop("_analysis_cache", None)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[ListSnapshot]:
        for date in self._dates:
            yield self._snapshots[date]

    def __getitem__(self, key: dt.date | int) -> ListSnapshot:
        if isinstance(key, int):
            return self._snapshots[self._dates[key]]
        return self._snapshots[key]

    def __contains__(self, date: dt.date) -> bool:
        return date in self._snapshots

    def __getstate__(self) -> dict:
        # The analysis cache is a pure accelerator holding unpicklable
        # read-only views; rebuild lazily after unpickling/copying.
        state = self.__dict__.copy()
        state.pop("_analysis_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        # Decouple the mutable containers so a copy.copy'd archive cannot
        # mutate the original's snapshots behind its analysis cache.
        self.__dict__.update(state)
        self._snapshots = dict(self._snapshots)
        self._dates = list(self._dates)

    def dates(self) -> list[dt.date]:
        """Sorted dates with a snapshot."""
        return list(self._dates)

    def snapshots(self) -> list[ListSnapshot]:
        """Snapshots in date order."""
        return [self._snapshots[d] for d in self._dates]

    def period(self, start: dt.date, end: dt.date) -> "ListArchive":
        """Return the sub-archive with ``start <= date <= end``."""
        if start > end:
            raise ValueError("start must not be after end")
        sub = ListArchive(provider=self.provider)
        for date, snapshot in self._snapshots.items():
            if start <= date <= end:
                sub.add(snapshot)
        return sub

    def top(self, n: int) -> "ListArchive":
        """Return an archive of the Top-``n`` head of every snapshot."""
        sub = ListArchive(provider=self.provider)
        for snapshot in self:
            sub.add(snapshot.top(n))
        return sub

    def to_directory(self, directory: str | Path) -> None:
        """Write one ``<provider>-<date>.csv`` per snapshot into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for snapshot in self:
            snapshot.to_csv(directory / f"{self.provider}-{snapshot.date.isoformat()}.csv")

    @classmethod
    def from_snapshots(cls, snapshots: Iterable[ListSnapshot],
                       provider: Optional[str] = None) -> "ListArchive":
        """Build an archive from snapshots (provider inferred if omitted).

        All snapshots must share one provider name; an empty iterable
        requires an explicit ``provider``.
        """
        snapshots = list(snapshots)
        if provider is None:
            if not snapshots:
                raise ValueError("provider is required for an empty archive")
            provider = snapshots[0].provider
        archive = cls(provider=provider)
        for snapshot in snapshots:
            archive.add(snapshot)
        return archive

    @classmethod
    def from_directory(cls, directory: str | Path, provider: str) -> "ListArchive":
        """Load an archive written by :meth:`to_directory`."""
        directory = Path(directory)
        archive = cls(provider=provider)
        for path in sorted(directory.glob(f"{provider}-*.csv")):
            date_text = path.stem.replace(f"{provider}-", "")
            date = dt.date.fromisoformat(date_text)
            archive.add(ListSnapshot.from_csv(path, provider=provider, date=date))
        return archive


def joint_period(archives: Iterable[ListArchive]) -> tuple[Optional[dt.date], Optional[dt.date]]:
    """Return the (start, end) dates covered by *all* archives (JOINT dataset).

    Returns ``(None, None)`` when the archives share no dates.
    """
    date_sets = [set(archive.dates()) for archive in archives]
    if not date_sets:
        return None, None
    common = set.intersection(*date_sets)
    if not common:
        return None, None
    return min(common), max(common)


class ListProvider(abc.ABC):
    """Interface of a top-list generator."""

    #: Human-readable provider name used on snapshots.
    name: str = "provider"

    @abc.abstractmethod
    def snapshot(self, day: int) -> ListSnapshot:
        """Generate the list as published on simulation day ``day``."""

    def generate_archive(self, days: Sequence[int]) -> ListArchive:
        """Generate snapshots for every day in ``days``."""
        archive = ListArchive(provider=self.name)
        for day in days:
            archive.add(self.snapshot(day))
        return archive
