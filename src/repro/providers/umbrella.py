"""Cisco-Umbrella-style top list provider.

The Umbrella Top 1M contains the DNS names (including subdomains) most
queried through the OpenDNS public resolver, ranked primarily by the
number of *distinct client sources* — the paper's Section 7.2 experiments
show probe count matters far more than query volume.  Because the signal
is raw resolver traffic, the list contains junk names under invalid TLDs,
names of discontinued services, trackers, and deep subdomains, and it
fluctuates heavily day to day.

This provider ranks the FQDN catalogue of the synthetic Internet by the
simulated per-day unique-client counts (optionally smoothed over a short
window) and supports injecting measurement traffic to reproduce the
rank-manipulation experiment (Figure 5).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet
from repro.population.traffic import DnsTraffic, InjectedQueries, TrafficSimulator
from repro.providers.base import ListProvider, ListSnapshot


class UmbrellaProvider(ListProvider):
    """Unique-client DNS query ranking over FQDNs (OpenDNS-style)."""

    name = "umbrella"

    def __init__(
        self,
        internet: SyntheticInternet,
        traffic: TrafficSimulator,
        list_size: Optional[int] = None,
        window_days: Optional[int] = None,
        unique_client_weight: float = 1.0,
        query_volume_weight: float = 0.05,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.internet = internet
        self.traffic = traffic
        self.config = config or internet.config
        self.list_size = list_size or self.config.list_size
        if window_days is None:
            window_days = self.config.umbrella_window_days
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        self.window_days = window_days
        self.unique_client_weight = unique_client_weight
        self.query_volume_weight = query_volume_weight
        self._day_traffic: dict[int, DnsTraffic] = {}
        self._names = np.array([f.fqdn for f in internet.fqdns])

    def _traffic_for_day(self, day: int,
                         injected: Sequence[InjectedQueries] = ()) -> DnsTraffic:
        if injected:
            # Injection days are never cached: the caller controls them.
            return self.traffic.dns_day(day, injected=injected)
        if day not in self._day_traffic:
            self._day_traffic[day] = self.traffic.dns_day(day)
        return self._day_traffic[day]

    def _score(self, dns: DnsTraffic) -> np.ndarray:
        return (self.unique_client_weight * dns.unique_clients.astype(float)
                + self.query_volume_weight * np.sqrt(dns.queries.astype(float)))

    def windowed_score(self, day: int) -> np.ndarray:
        """Average day score over the (short) window ending on ``day``."""
        first = max(0, day - self.window_days + 1)
        days = list(range(first, day + 1))
        total = np.zeros(len(self.internet.fqdns))
        for d in days:
            total += self._score(self._traffic_for_day(d))
        return total / len(days)

    def snapshot(self, day: int) -> ListSnapshot:
        """The Umbrella-style list published on simulation day ``day``."""
        scores = self.windowed_score(day)
        order = np.lexsort((np.arange(len(scores)), -scores))
        entries: list[str] = []
        for idx in order:
            if scores[int(idx)] <= 0 or len(entries) >= self.list_size:
                break
            entries.append(str(self._names[int(idx)]))
        return ListSnapshot(provider=self.name, date=self.config.date_of(day),
                            entries=tuple(entries))

    # ------------------------------------------------------------------
    # Rank manipulation support (Section 7.2)
    # ------------------------------------------------------------------
    def rank_with_injection(self, day: int,
                            injections: Sequence[InjectedQueries]) -> dict[str, Optional[int]]:
        """Rank injected test names against that day's organic traffic.

        Returns, for every injected FQDN, its 1-based rank in the list the
        provider would publish, or ``None`` when it does not make the list
        (the paper's "empty field" outcome for insufficient traffic).
        """
        organic = self.windowed_score(day)
        dns = self._traffic_for_day(day, injected=injections)
        injected_scores = {
            injection.fqdn.lower(): (
                self.unique_client_weight * dns.injected[injection.fqdn.lower()][0]
                + self.query_volume_weight * float(np.sqrt(dns.injected[injection.fqdn.lower()][1]))
            )
            for injection in injections
        }
        order = np.sort(organic[organic > 0])[::-1]
        results: dict[str, Optional[int]] = {}
        limit = self.list_size
        for fqdn, score in injected_scores.items():
            if score <= 0:
                results[fqdn] = None
                continue
            # Rank = number of organic names with a strictly higher score + 1.
            higher = int(np.searchsorted(-order, -score, side="left"))
            rank = higher + 1
            results[fqdn] = rank if rank <= limit else None
        return results
