"""Alexa-style top list provider.

Alexa ranks web sites from visitor and page-view statistics collected by
a browser-toolbar panel, aggregated over a sliding window (historically
three months; shortened drastically in January 2018, which the paper
shows made the list far more volatile and introduced a weekly pattern).

This provider reproduces the mechanism: the day score of a base domain is
the panel's unique visitors plus a page-view component, averaged over the
last ``window_days`` days; from ``change_day`` on, the window collapses
to a single day.  Only base domains of existing (web-serving) sites are
ranked — the Alexa list contains almost exclusively base domains
(Table 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet
from repro.population.traffic import TrafficSimulator
from repro.providers.base import ListProvider, ListSnapshot


class AlexaProvider(ListProvider):
    """Panel-based web-activity ranking with a configurable sliding window."""

    name = "alexa"

    #: Sentinel: take the structural-change day from the simulation config.
    USE_CONFIG_CHANGE_DAY = "config"

    def __init__(
        self,
        internet: SyntheticInternet,
        traffic: TrafficSimulator,
        list_size: Optional[int] = None,
        window_days: Optional[int] = None,
        change_day: "Optional[int] | str" = USE_CONFIG_CHANGE_DAY,
        post_change_panel_factor: float = 0.15,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        if not 0 < post_change_panel_factor <= 1:
            raise ValueError("post_change_panel_factor must be in (0, 1]")
        self.internet = internet
        self.traffic = traffic
        self.config = config or internet.config
        self.list_size = list_size or self.config.list_size
        self.window_days = window_days or self.config.alexa_window_days
        if change_day == self.USE_CONFIG_CHANGE_DAY:
            self.change_day: Optional[int] = self.config.alexa_change_day
        else:
            self.change_day = change_day  # explicit day, or None to disable
        #: After the structural change, the list is computed from a much
        #: smaller slice of the panel (the paper observes a sharp volatility
        #: increase and a new weekly pattern): only this fraction of the
        #: panel's observations is used.
        self.post_change_panel_factor = post_change_panel_factor
        self._day_scores: dict[tuple[int, bool], np.ndarray] = {}
        self._names = np.array([d.name for d in internet.domains])

    def effective_window(self, day: int) -> int:
        """Window length in effect on ``day`` (1 after the structural change)."""
        if self._changed(day):
            return 1
        return self.window_days

    def _changed(self, day: int) -> bool:
        return self.change_day is not None and day >= self.change_day

    def _score_for_day(self, day: int, thinned: bool) -> np.ndarray:
        key = (day, thinned)
        if key not in self._day_scores:
            web = self.traffic.web_day(day)
            if thinned:
                rng = np.random.default_rng([self.config.seed, day, 11])
                visits = rng.binomial(web.visits, self.post_change_panel_factor)
                unique = rng.binomial(web.unique_visitors, self.post_change_panel_factor)
                score = unique.astype(float) + 0.2 * visits.astype(float)
            else:
                score = web.score()
            self._day_scores[key] = score
        return self._day_scores[key]

    def windowed_score(self, day: int) -> np.ndarray:
        """Average day score over the window ending on ``day``."""
        window = self.effective_window(day)
        first = max(0, day - window + 1)
        days = range(first, day + 1)
        thinned = self._changed(day)
        total = np.zeros(len(self.internet.domains))
        for d in days:
            total += self._score_for_day(d, thinned)
        return total / len(list(days))

    def snapshot(self, day: int) -> ListSnapshot:
        """The Alexa-style list published on simulation day ``day``."""
        scores = self.windowed_score(day)
        # Deterministic tie-breaking by index keeps snapshots reproducible.
        order = np.lexsort((np.arange(len(scores)), -scores))
        top = [int(i) for i in order[: self.list_size * 2]]
        entries: list[str] = []
        for idx in top:
            if scores[idx] <= 0:
                break
            entries.append(str(self._names[idx]))
            if len(entries) >= self.list_size:
                break
        return ListSnapshot(provider=self.name, date=self.config.date_of(day),
                            entries=tuple(entries))
