"""Simulation orchestrator.

Builds the synthetic Internet, runs the traffic simulation, and produces
daily archives for all three providers over the configured period — the
equivalent of the paper's JOINT dataset (June 2017 - April 2018, all
three lists daily).  Results are memoised per configuration so that the
test and benchmark suites build each dataset only once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet
from repro.population.traffic import TrafficSimulator
from repro.population.zonefile import ZoneFile
from repro.providers.alexa import AlexaProvider
from repro.providers.base import ListArchive
from repro.providers.majestic import MajesticProvider
from repro.providers.umbrella import UmbrellaProvider


@dataclass
class SimulationRun:
    """Everything the analyses need from one simulated observation period."""

    config: SimulationConfig
    internet: SyntheticInternet
    traffic: TrafficSimulator
    providers: Mapping[str, object]
    archives: Mapping[str, ListArchive]
    zonefile: ZoneFile

    @property
    def alexa(self) -> ListArchive:
        """Daily Alexa-style archive."""
        return self.archives["alexa"]

    @property
    def umbrella(self) -> ListArchive:
        """Daily Umbrella-style archive."""
        return self.archives["umbrella"]

    @property
    def majestic(self) -> ListArchive:
        """Daily Majestic-style archive."""
        return self.archives["majestic"]

    def archive(self, name: str) -> ListArchive:
        """Archive by provider name."""
        return self.archives[name]

    def provider(self, name: str) -> object:
        """Provider object by name (for provider-specific experiments)."""
        return self.providers[name]


_RUN_CACHE: dict[SimulationConfig, SimulationRun] = {}
_PROFILE_RUN_CACHE: dict[str, SimulationRun] = {}


def run_simulation(config: Optional[SimulationConfig] = None,
                   use_cache: bool = True) -> SimulationRun:
    """Run the full simulation for ``config`` (default benchmark config).

    Generates the population once, then one snapshot per provider per day.
    With ``use_cache`` (the default), repeated calls with an identical
    configuration return the same :class:`SimulationRun` instance.
    """
    config = config or SimulationConfig.benchmark()
    if use_cache and config in _RUN_CACHE:
        return _RUN_CACHE[config]

    internet = SyntheticInternet(config)
    traffic = TrafficSimulator(internet, config)
    providers = {
        "alexa": AlexaProvider(internet, traffic, config=config),
        "umbrella": UmbrellaProvider(internet, traffic, config=config),
        "majestic": MajesticProvider(internet, traffic, config=config),
    }
    days = list(range(config.n_days))
    archives = {name: provider.generate_archive(days)
                for name, provider in providers.items()}
    run = SimulationRun(
        config=config,
        internet=internet,
        traffic=traffic,
        providers=providers,
        archives=archives,
        zonefile=ZoneFile.from_internet(internet),
    )
    if use_cache:
        _RUN_CACHE[config] = run
    return run


def run_profile(profile, use_cache: bool = True) -> SimulationRun:
    """Run the simulation behind a scenario profile, cached per profile name.

    ``profile`` is anything with ``name`` and ``config`` attributes
    (normally a :class:`~repro.scenarios.profiles.SimulationProfile`; the
    duck typing avoids a circular import).  The profile-name cache sits in
    front of the per-config cache, so repeated scenario runs — the common
    case for the golden harness and the benchmark battery — skip even the
    config hash; a name reused with a *different* configuration falls
    through to a fresh run instead of returning stale data.
    """
    name = profile.name
    config = profile.config
    if use_cache:
        cached = _PROFILE_RUN_CACHE.get(name)
        if cached is not None and cached.config == config:
            return cached
    run = run_simulation(config, use_cache=use_cache)
    if use_cache:
        _PROFILE_RUN_CACHE[name] = run
    return run


def clear_simulation_cache() -> None:
    """Drop all memoised simulation runs (mainly for tests)."""
    _RUN_CACHE.clear()
    _PROFILE_RUN_CACHE.clear()
