"""Setuptools entry point.

The project is configured through ``pyproject.toml``; this shim exists so
that legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work on environments without the ``wheel``
package, e.g. offline machines.
"""

from setuptools import setup

setup()
