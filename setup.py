"""Setuptools entry point.

Kept as plain ``setup.py`` (no build-time dependencies beyond setuptools)
so editable installs work on offline machines without the ``wheel``
package: ``pip install -e .`` or ``python setup.py develop``.

Installing registers the ``repro-serve`` console script (the archive
store / query API CLI); the uninstalled equivalent is
``PYTHONPATH=src python -m repro.service.cli``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-toplists",
    version="1.1.0",
    description=("Reproduction of 'A Long Way to the Top' (IMC 2018): "
                 "top-list analyses, simulation, and serving layer"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve = repro.service.cli:main",
        ],
    },
)
