"""Figure 2c: CDF of the share of days a domain spends in a list.

Reproduces the days-in-list CDF for the Top-1M and Top-1k scopes of every
list: Majestic's curves hug the lower-right corner (domains stay in for
the whole period), Alexa's Top-1M hugs the upper-left (domains leave
quickly), and every Top-1k is more stable than its Top-1M.
"""

import pytest

from bench_utils import emit
from repro.core.stability import days_in_list, days_in_list_cdf


@pytest.mark.bench
def test_fig2c_days_in_list_cdf(benchmark, bench_run, bench_config):
    top_k = bench_config.top_k

    def compute():
        cdfs = {}
        full_share = {}
        for name, archive in bench_run.archives.items():
            for scope, top_n in ((f"{name}-1M", None), (f"{name}-1k", top_k)):
                cdfs[scope] = days_in_list_cdf(archive, top_n=top_n)
                counts = days_in_list(archive, top_n=top_n)
                full_share[scope] = (sum(1 for v in counts.values()
                                         if v == bench_config.n_days) / len(counts))
        return cdfs, full_share

    cdfs, full_share = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'scope':<14} {'ever-listed':>12} {'always listed':>14} "
             f"{'median share of days':>22}"]
    for scope, cdf in cdfs.items():
        median_share = cdf[len(cdf) // 2][0]
        lines.append(f"{scope:<14} {len(cdf):>12} {100 * full_share[scope]:>13.1f}% "
                     f"{100 * median_share:>21.1f}%")
    emit("Figure 2c: share of days spent in the list", lines)

    # Paper ordering (most to least stable): Majestic 1k, Majestic 1M,
    # the Top-1k lists, then Umbrella 1M and Alexa 1M at the bottom.
    assert full_share["majestic-1k"] >= full_share["majestic-1M"]
    assert full_share["majestic-1M"] > full_share["umbrella-1M"]
    assert full_share["majestic-1M"] > full_share["alexa-1M"]
    assert full_share["alexa-1k"] > full_share["alexa-1M"]
    assert full_share["umbrella-1k"] > full_share["umbrella-1M"]

    benchmark.extra_info["always_listed_share"] = {k: round(v, 3) for k, v in full_share.items()}
