"""Table 3: classification of one-week Top-1k disjunct domains.

Reproduces the Section 5.3 analysis: aggregate each list's Top-1k over the
last week, take the domains appearing in only one list, and classify them
against an hpHosts-style blacklist, a Lumen-style mobile-traffic dataset,
and the other lists' Top-1M.
"""

import pytest

from bench_utils import emit
from repro.core.intersection import aggregate_top, disjunct_domains
from repro.measurement.classify import (
    BlacklistService,
    MobileTrafficMonitor,
    classify_disjunct,
)


@pytest.mark.bench
def test_table3_disjunct_classification(benchmark, bench_run, bench_config):
    top_k = bench_config.top_k
    blacklist = BlacklistService.from_internet(bench_run.internet)
    mobile = MobileTrafficMonitor.from_internet(bench_run.internet)

    def compute():
        aggregated = {name: aggregate_top(archive, top_n=top_k, last_days=7)
                      for name, archive in bench_run.archives.items()}
        disjunct = disjunct_domains(aggregated, normalise=False)
        other_top1m = {}
        for name in bench_run.archives:
            union: set[str] = set()
            for other_name, other_archive in bench_run.archives.items():
                if other_name != name:
                    union |= aggregate_top(other_archive, top_n=bench_config.list_size,
                                           last_days=7)
            other_top1m[name] = union
        return classify_disjunct(disjunct, blacklist=blacklist, mobile=mobile,
                                 other_top1m=other_top1m)

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'list':<10} {'# disjunct':>10} {'% hpHosts':>10} {'% Lumen':>9} {'% Top 1M':>10}"]
    for name, row in table.items():
        lines.append(f"{name:<10} {row.disjunct_count:>10} {row.blacklist_share:>9.1f}% "
                     f"{row.mobile_share:>8.1f}% {row.other_top1m_share:>9.1f}%")
    emit("Table 3: classification of Top-1k disjunct domains", lines)

    umbrella = table["umbrella"]
    alexa = table["alexa"]
    majestic = table["majestic"]
    # Paper shape: Umbrella's unique domains are dominated by tracking and
    # mobile-only services (20.2% hpHosts, 39.4% Lumen vs ~2-4% for the web
    # lists) and are the least likely to appear in the other lists' Top 1M
    # (25.6% vs 99.1%/93.6%).  The Alexa comparison is the robust one at
    # this scale; Majestic's disjunct set is tiny and therefore noisy.
    assert umbrella.disjunct_count > 0
    assert umbrella.blacklist_share > alexa.blacklist_share
    assert umbrella.blacklist_share > 5.0
    assert umbrella.mobile_share > alexa.mobile_share
    assert umbrella.mobile_share > 10.0
    assert umbrella.other_top1m_share < alexa.other_top1m_share
    assert alexa.other_top1m_share > 60.0
    assert majestic.disjunct_count < umbrella.disjunct_count

    benchmark.extra_info["table3"] = {
        name: {"disjunct": row.disjunct_count,
               "hphosts_pct": round(row.blacklist_share, 1),
               "lumen_pct": round(row.mobile_share, 1),
               "top1m_pct": round(row.other_top1m_share, 1)}
        for name, row in table.items()}
