"""Figure 4: CDF of Kendall's tau between top lists.

Reproduces the rank-correlation analysis of the Top-1k heads: day-to-day
correlation is very high for Majestic, lower for Alexa and Umbrella, and
correlation against a fixed reference day collapses for all lists.
"""

import pytest

from bench_utils import emit
from repro.core.rank_dynamics import kendall_tau_series, strong_correlation_share
from repro.stats.distributions import empirical_cdf_points


@pytest.mark.bench
def test_fig4_kendall_tau_cdf(benchmark, bench_run, bench_config):
    top_k = bench_config.top_k

    def compute():
        series = {}
        for name, archive in bench_run.archives.items():
            series[f"{name} (day-to-day)"] = kendall_tau_series(archive, top_n=top_k,
                                                                mode="day-to-day")
            series[f"{name} (vs first day)"] = kendall_tau_series(archive, top_n=top_k,
                                                                  mode="vs-first")
        return series

    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'series':<28} {'n':>4} {'median tau':>11} {'share tau>0.95':>15}"]
    for name, taus in series.items():
        cdf = empirical_cdf_points(taus)
        median_tau = cdf[len(cdf) // 2][0]
        lines.append(f"{name:<28} {len(taus):>4} {median_tau:>11.3f} "
                     f"{100 * strong_correlation_share(taus):>14.1f}%")
    emit("Figure 4: Kendall's tau between top lists (Top-1k)", lines)

    majestic_share = strong_correlation_share(series["majestic (day-to-day)"], 0.95)
    alexa_share = strong_correlation_share(series["alexa (day-to-day)"], 0.95)
    umbrella_share = strong_correlation_share(series["umbrella (day-to-day)"], 0.95)
    # Paper: day-to-day very strong correlation for 99% of Majestic days,
    # 72% Alexa, 40% Umbrella; against a fixed day it drops below 5%.
    assert majestic_share > 0.85
    assert majestic_share > alexa_share >= 0.0
    assert majestic_share > umbrella_share
    for name in ("alexa", "umbrella"):
        day_to_day = sum(series[f"{name} (day-to-day)"]) / len(series[f"{name} (day-to-day)"])
        vs_first = sum(series[f"{name} (vs first day)"]) / len(series[f"{name} (vs first day)"])
        assert vs_first <= day_to_day + 0.05

    benchmark.extra_info["strong_share_day_to_day"] = {
        "majestic": round(majestic_share, 3),
        "alexa": round(alexa_share, 3),
        "umbrella": round(umbrella_share, 3),
    }
