"""Figures 3b/3c: weekday/weekend dynamics of second-level-domain groups.

Reproduces the SLD-group analysis: groups whose membership count varies by
more than 40% between weekdays and weekends, split into weekend-heavy
(leisure-style) and weekday-heavy (office-style) groups, for the
post-change Alexa list and the Umbrella list.
"""

import pytest

from bench_utils import emit
from repro.core.weekly import sld_group_dynamics
from repro.population.categories import CATEGORY_PROFILES, DomainCategory
from repro.providers.base import ListArchive


def _post_change_alexa(bench_run, bench_config) -> ListArchive:
    change_date = bench_config.date_of(bench_config.alexa_change_day)
    post = ListArchive(provider="alexa")
    for snapshot in bench_run.alexa:
        if snapshot.date >= change_date:
            post.add(snapshot)
    return post


@pytest.mark.bench
def test_fig3bc_sld_group_dynamics(benchmark, bench_run, bench_config):
    archives = {
        "alexa (post-change)": _post_change_alexa(bench_run, bench_config),
        "umbrella": bench_run.umbrella,
        "majestic": bench_run.majestic,
    }

    groups = benchmark.pedantic(
        lambda: {name: sld_group_dynamics(archive, threshold=0.4, min_group_size=2)
                 for name, archive in archives.items()},
        rounds=1, iterations=1)

    lines = []
    for name, dynamics in groups.items():
        weekend_heavy = [g for g in dynamics.values() if g.more_popular_on_weekends]
        weekday_heavy = [g for g in dynamics.values() if not g.more_popular_on_weekends]
        lines.append(f"{name}: {len(dynamics)} groups vary >40% "
                     f"({len(weekend_heavy)} weekend-heavy, {len(weekday_heavy)} weekday-heavy)")
        for group in sorted(dynamics.values(), key=lambda g: -abs(g.relative_change))[:6]:
            direction = "weekend" if group.more_popular_on_weekends else "weekday"
            lines.append(f"    {group.group:<22} weekday {group.weekday_mean:6.1f}  "
                         f"weekend {group.weekend_mean:6.1f}  ({direction}-heavy)")
    emit("Figures 3b/3c: SLD groups with weekday/weekend dynamics", lines)

    # The volatile lists exhibit such groups; the backlink-based list shows
    # (almost) none, matching "Majestic does not display a weekly pattern".
    assert len(groups["umbrella"]) > 0
    assert len(groups["alexa (post-change)"]) > 0
    assert len(groups["majestic"]) <= min(len(groups["umbrella"]),
                                          len(groups["alexa (post-change)"]))

    # Both directions exist somewhere: leisure-style groups gain on
    # weekends, office-style groups gain on weekdays (the paper's
    # blogspot/tumblr vs sharepoint example).
    volatile = list(groups["umbrella"].values()) + list(groups["alexa (post-change)"].values())
    assert any(g.more_popular_on_weekends for g in volatile)
    assert any(not g.more_popular_on_weekends for g in volatile)

    # Sanity-check against the synthetic ground truth: leisure-type domains
    # have weekend factors > 1, office-type < 1.
    assert CATEGORY_PROFILES[DomainCategory.LEISURE].weekend_factor > 1
    assert CATEGORY_PROFILES[DomainCategory.OFFICE].weekend_factor < 1

    benchmark.extra_info["group_counts"] = {name: len(d) for name, d in groups.items()}
