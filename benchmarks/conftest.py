"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper on the
``SimulationConfig.benchmark()`` dataset (scaled-down Top-1M lists over a
4-week JOINT period with an Alexa structural change on day 18).  The
simulation and the measurement harness are built once per session.
"""

from __future__ import annotations

import pytest

from repro.measurement.harness import MeasurementHarness
from repro.population.config import SimulationConfig
from repro.providers.simulation import SimulationRun, run_simulation


def pytest_configure(config):  # noqa: D103 - pytest hook
    config.addinivalue_line("markers", "bench: paper table/figure reproduction benchmark")


@pytest.fixture(scope="session")
def emit_header():
    """Kept for backwards compatibility with older benchmark revisions."""
    from bench_utils import emit

    return emit


@pytest.fixture(scope="session")
def bench_config() -> SimulationConfig:
    """The benchmark-scale simulation configuration."""
    return SimulationConfig.benchmark()


@pytest.fixture(scope="session")
def bench_run(bench_config: SimulationConfig) -> SimulationRun:
    """The simulated JOINT dataset used by every benchmark."""
    return run_simulation(bench_config)


@pytest.fixture(scope="session")
def bench_harness(bench_run: SimulationRun) -> MeasurementHarness:
    """Measurement harness bound to the benchmark Internet."""
    return MeasurementHarness(bench_run.internet)
