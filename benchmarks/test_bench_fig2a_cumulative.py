"""Figure 2a: cumulative sum of all domains ever included in the lists.

Reproduces the cumulative-unique-domain curves: the stable backlink-based
list grows almost linearly and slowly, while the volatile lists accumulate
multiples of their size over the period, and the paper's 20-33% share of
daily changes that are genuinely new domains.
"""

import pytest

from bench_utils import emit
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    new_domains_per_day,
)


@pytest.mark.bench
def test_fig2a_cumulative_unique_domains(benchmark, bench_run, bench_config):
    def compute():
        cumulative = {name: cumulative_unique_domains(archive)
                      for name, archive in bench_run.archives.items()}
        new = {name: new_domains_per_day(archive)
               for name, archive in bench_run.archives.items()}
        changes = {name: daily_changes(archive)
                   for name, archive in bench_run.archives.items()}
        return cumulative, new, changes

    cumulative, new, changes = benchmark(compute)

    dates = sorted(next(iter(cumulative.values())))
    lines = [f"{'date':<12} " + " ".join(f"{name:>10}" for name in cumulative)]
    for date in dates[:: max(1, len(dates) // 10)]:
        lines.append(f"{date.isoformat():<12} "
                     + " ".join(f"{cumulative[name][date]:>10}" for name in cumulative))
    lines.append("-- share of daily changing domains that are new --")
    for name in cumulative:
        total_new = sum(new[name].values())
        total_change = sum(changes[name].values())
        share = total_new / total_change if total_change else 0.0
        lines.append(f"{name:<10} {100 * share:5.1f}% new (rest re-join after leaving)")
    emit("Figure 2a: cumulative unique domains", lines)

    list_size = bench_config.list_size
    final = {name: cumulative[name][dates[-1]] for name in cumulative}
    # Paper shape: Majestic stays close to its list size (1.7M for 1M over
    # a year), the volatile lists accumulate far more distinct domains.
    assert final["majestic"] < 1.3 * list_size
    assert final["umbrella"] > 1.5 * list_size
    assert final["alexa"] > final["majestic"]
    # For the volatile lists, genuinely new domains are a minority of the
    # daily change (20-33% in the paper): most changing domains are
    # repeatedly removed and re-inserted.
    for name in ("alexa", "umbrella"):
        total_new = sum(new[name].values())
        total_change = sum(changes[name].values())
        assert 0.0 < total_new / total_change < 0.6

    benchmark.extra_info["final_unique"] = final
