"""Figure 5: Umbrella rank achieved by injected measurement traffic.

Reproduces the probe-count x query-frequency grid on a weekday and a
weekend day, the probe-count-beats-query-volume headline, the quick
disappearance after the measurement stops, and the TTL sweep.
"""

import pytest

from bench_utils import emit
from repro.ranking.manipulation import UmbrellaInjectionExperiment, UmbrellaTtlExperiment

PROBE_COUNTS = (100, 1_000, 5_000, 10_000)
FREQUENCIES = (1, 10, 50, 100)


@pytest.mark.bench
def test_fig5_umbrella_rank_injection(benchmark, bench_run, bench_config):
    provider = bench_run.provider("umbrella")
    experiment = UmbrellaInjectionExperiment(provider)
    weekday = next(d for d in range(7, bench_config.n_days) if not bench_config.is_weekend(d))
    weekend = next(d for d in range(7, bench_config.n_days) if bench_config.is_weekend(d))

    def compute():
        return {
            "weekday": experiment.run_grid(weekday, PROBE_COUNTS, FREQUENCIES),
            "weekend": experiment.run_grid(weekend, PROBE_COUNTS, FREQUENCIES),
        }

    grids = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for label, grid in grids.items():
        lines.append(f"-- {label} --")
        row_label = "probes / q-day"
        lines.append(f"{row_label:<16}" + "".join(f"{f:>9}" for f in FREQUENCIES))
        for probes in PROBE_COUNTS:
            row = "".join(f"{grid[(probes, f)].rank if grid[(probes, f)].rank else '-':>9}"
                          for f in FREQUENCIES)
            lines.append(f"{probes:<16}{row}")
    ttl = UmbrellaTtlExperiment(provider)
    ttl_ranks = ttl.run(weekday)
    lines.append("-- TTL sweep (1000 probes, ~96 q/day) --")
    lines.append("   ".join(f"ttl {t}s: {r}" for t, r in ttl_ranks.items()))
    emit("Figure 5: Umbrella rank vs probe count and query frequency", lines)

    weekday_grid = grids["weekday"]
    # More probes always help; within a probe count, extra query volume
    # helps little.
    for freq in FREQUENCIES:
        ranks = [weekday_grid[(p, freq)].rank for p in PROBE_COUNTS]
        listed = [r for r in ranks if r is not None]
        assert listed == sorted(listed, reverse=True) or len(listed) < 2
    best_small_volume = weekday_grid[(10_000, 1)].rank
    best_large_volume = weekday_grid[(1_000, 100)].rank
    assert best_small_volume is not None and best_large_volume is not None
    assert best_small_volume < best_large_volume

    # Stopping the measurement removes the domain from the list.
    assert experiment.rank_after_stopping(weekday + 1) is None

    # TTL has no meaningful influence on the achieved rank.
    spread = ttl.max_rank_spread(weekday)
    assert spread is not None
    assert spread <= 0.05 * bench_config.list_size

    benchmark.extra_info["rank_10k_probes_1q"] = best_small_volume
    benchmark.extra_info["rank_1k_probes_100q"] = best_large_volume
