"""Figure 7: CDN and AS structure of the lists vs the general population.

Reproduces (a) the CDN detection ratio per list and weekday, (b) the share
of the top-5 CDNs for the Top-1k and Top-1M scopes against com/net/org,
(c) the weekday dependence of the top-CDN share, and (d) the top-5 origin
ASes per list against the population.
"""

import numpy as np
import pytest

from bench_utils import emit
from repro.measurement.harness import TargetSet


@pytest.mark.bench
def test_fig7_cdn_and_as_structure(benchmark, bench_run, bench_harness, bench_config):
    top_k = bench_config.top_k
    population = TargetSet.from_zonefile(bench_run.zonefile)

    def compute():
        results = {"population": bench_harness.measure_dns(population)}
        for name, archive in bench_run.archives.items():
            results[f"{name}-1M"] = bench_harness.measure_dns(
                TargetSet.from_snapshot(archive[-1], name=f"{name}-1M"))
            results[f"{name}-1k"] = bench_harness.measure_dns(
                TargetSet.from_snapshot(archive[-1], top_n=top_k, name=f"{name}-1k"))
        # Weekday dependence of the CDN ratio (Figure 7a/7c): measure the
        # Alexa list on each day of the final week.
        weekly = {}
        for day in range(bench_config.n_days - 7, bench_config.n_days):
            snapshot = bench_run.alexa[day]
            weekly[snapshot.date] = bench_harness.measure_dns(
                TargetSet.from_snapshot(snapshot, name="alexa")).cdn_share
        return results, weekly

    results, weekly = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["-- CDN ratio and top CDNs (Figures 7a/7b) --"]
    for target, report in results.items():
        top_cdns = ", ".join(f"{name} {100 * share:.0f}%"
                             for name, share in list(report.top_cdns(3).items()))
        lines.append(f"{target:<14} CDN ratio {report.cdn_share:5.1f}%   top CDNs: {top_cdns}")
    lines.append("-- CDN ratio of the Alexa list by weekday (Figure 7c) --")
    for date, value in weekly.items():
        lines.append(f"{date.isoformat()} ({date.strftime('%a')})  {value:5.1f}%")
    lines.append("-- top 5 origin ASes (Figure 7d) --")
    for target in ("alexa-1M", "umbrella-1M", "majestic-1M", "population"):
        top_as = ", ".join(f"{info.name}({info.asn}) {100 * share:.0f}%"
                           for info, share in results[target].top_as(5).items())
        lines.append(f"{target:<14} {top_as}")
    emit("Figure 7: CDN and AS structure", lines)

    population_report = results["population"]
    # CDN prevalence: every Top-1M exceeds the population by at least 2x,
    # every Top-1k by much more (factors 2 / 20 in the paper).
    for name in ("alexa", "umbrella", "majestic"):
        assert results[f"{name}-1M"].cdn_share > 2 * population_report.cdn_share
        assert results[f"{name}-1k"].cdn_share > results[f"{name}-1M"].cdn_share

    # The top-5 CDN share among CDN-hosted domains is high everywhere, and
    # Google dominates the general population's CDN-detected names.
    assert sum(population_report.top_cdns(5).values()) > 0.6
    top_population_cdns = list(population_report.top_cdns(2))
    assert "Google" in top_population_cdns

    # AS structure: GoDaddy-style mass hosting dominates the population but
    # not the lists' heads; the population reaches more distinct ASes.
    population_top_as = {info.name for info in population_report.top_as(5)}
    assert "GoDaddy" in population_top_as
    alexa_1k_top_as = {info.name for info in results["alexa-1k"].top_as(5)}
    assert "GoDaddy" not in alexa_1k_top_as
    for name in ("alexa", "umbrella", "majestic"):
        assert results[f"{name}-1M"].unique_as_v4 <= population_report.unique_as_v4

    # Weekday dependence exists but is modest (Figure 7a).
    weekday_values = [v for d, v in weekly.items() if d.weekday() < 5]
    weekend_values = [v for d, v in weekly.items() if d.weekday() >= 5]
    if weekday_values and weekend_values:
        assert abs(np.mean(weekday_values) - np.mean(weekend_values)) < 20.0

    benchmark.extra_info["cdn_share"] = {
        target: round(report.cdn_share, 1) for target, report in results.items()}
