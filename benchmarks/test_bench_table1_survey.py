"""Table 1: use of top lists at 10 networking venues in 2017.

Reproduces both halves of Table 1 from the reference survey corpus: the
per-venue usage/dependence counts and the histogram of list subsets used.
"""

import pytest

from bench_utils import emit
from repro.survey import (
    list_usage_histogram,
    reference_corpus,
    replicability_summary,
    venue_usage_table,
)
from repro.survey.tables import totals_row


@pytest.mark.bench
def test_table1_survey(benchmark):
    corpus = reference_corpus()

    def compute():
        rows = venue_usage_table(corpus)
        return rows, totals_row(rows), list_usage_histogram(corpus), replicability_summary(corpus)

    rows, total, histogram, replicability = benchmark(compute)

    lines = [f"{'venue':<16} {'papers':>6} {'using':>6} {'%':>6} {'Y':>3} {'V':>3} {'N':>3} "
             f"{'list-date':>9} {'meas-date':>9}"]
    for row in rows + [total]:
        lines.append(f"{row.venue:<16} {row.total_papers:>6} {row.using:>6} "
                     f"{100 * row.usage_share:>5.1f}% {row.dependent:>3} {row.verification:>3} "
                     f"{row.independent:>3} {row.states_list_date:>9} "
                     f"{row.states_measurement_date:>9}")
    lines.append("-- list subsets used (right half) --")
    for usage, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        lines.append(f"{usage:<18} {count}")
    lines.append(f"papers documenting both dates: {replicability.states_both}")
    emit("Table 1: top-list use in 2017 venues", lines)

    # Paper ground truth: 687 papers, 69 users (10.0%), Y/V/N = 45/17/7,
    # 7 list dates, 9 measurement dates, 2 with both, Alexa 1M used 29x.
    assert total.total_papers == 687
    assert total.using == 69
    assert (total.dependent, total.verification, total.independent) == (45, 17, 7)
    assert (total.states_list_date, total.states_measurement_date) == (7, 9)
    assert replicability.states_both == 2
    assert histogram["alexa-1M"] == 29
    assert histogram["umbrella-1M"] == 3
    benchmark.extra_info["users"] = total.using
    benchmark.extra_info["usage_share"] = round(total.usage_share, 4)
