"""Table 2: dataset structure metrics per list.

Reproduces the Table 2 columns for the simulated JOINT dataset: mean valid
TLD coverage, mean base domains, subdomain-depth shares, domain aliases
(DUPSLD), mean daily change and mean new domains per day — for the full
lists and the Top-1k-style heads.
"""

import pytest

from bench_utils import emit
from repro.core.stability import mean_daily_change, new_domains_per_day
from repro.core.structure import summarise_archive


def _rows(run, top_n=None, sample_every=7):
    rows = {}
    for name, archive in run.archives.items():
        scoped = archive.top(top_n) if top_n else archive
        structure = summarise_archive(scoped, sample_every=sample_every)
        change = mean_daily_change(scoped)
        new = new_domains_per_day(scoped)
        rows[name] = {
            "tlds": structure.tld_coverage,
            "base_domains": structure.base_domains,
            "aliases": structure.aliases,
            "depth_shares": structure.depth_shares,
            "max_depth": structure.max_depth,
            "daily_change": change,
            "new_per_day": sum(new.values()) / max(1, len(new)),
        }
    return rows


@pytest.mark.bench
def test_table2_structure(benchmark, bench_run, bench_config):
    full, head = benchmark.pedantic(
        lambda: (_rows(bench_run), _rows(bench_run, top_n=bench_config.top_k)),
        rounds=1, iterations=1)

    lines = [f"{'list':<14} {'µTLD':>10} {'µBD':>10} {'SD1':>7} {'SD2':>7} {'SD3':>7} "
             f"{'SDM':>4} {'DUPSLD':>9} {'µΔ':>9} {'µNEW':>9}"]
    for scope, rows in (("1M", full), ("1k", head)):
        for name, row in rows.items():
            depth = row["depth_shares"]
            lines.append(
                f"{name + ' ' + scope:<14} {row['tlds'].mean:>10.1f} "
                f"{row['base_domains'].mean:>10.1f} "
                f"{100 * depth.get(1, 0.0):>6.1f}% {100 * depth.get(2, 0.0):>6.1f}% "
                f"{100 * depth.get(3, 0.0):>6.1f}% {row['max_depth']:>4} "
                f"{row['aliases'].mean:>9.1f} {row['daily_change']:>9.1f} "
                f"{row['new_per_day']:>9.1f}")
    emit("Table 2: dataset structure metrics", lines)

    list_size = bench_config.list_size
    # Paper shape: Alexa/Majestic are essentially base-domain lists, the
    # Umbrella list is FQDN-based with only ~28% base domains and much
    # deeper names; Majestic is the most stable, Umbrella has large churn.
    assert full["alexa"]["base_domains"].mean > 0.95 * list_size
    assert full["majestic"]["base_domains"].mean > 0.95 * list_size
    assert full["umbrella"]["base_domains"].mean < 0.6 * list_size
    assert full["umbrella"]["max_depth"] > full["alexa"]["max_depth"]
    assert full["majestic"]["daily_change"] < full["umbrella"]["daily_change"]
    assert full["umbrella"]["daily_change"] < full["alexa"]["daily_change"]  # post-change Alexa
    # New domains are a fraction of the daily change (20-33% in the paper).
    for name in ("alexa", "umbrella", "majestic"):
        assert full[name]["new_per_day"] <= full[name]["daily_change"] + 1e-9
    # Umbrella covers fewer valid TLDs in its head than the web lists (13
    # vs 105/50 in the paper).
    assert head["umbrella"]["tlds"].mean < head["alexa"]["tlds"].mean

    benchmark.extra_info["daily_change"] = {k: round(v["daily_change"], 1)
                                            for k, v in full.items()}
