"""Figure 1c: average % of daily change over rank subset size.

Reproduces the churn-vs-rank curves: instability grows with rank depth for
the panel- and DNS-based lists, stays flat and low for the backlink-based
list, and Alexa's curve shifts up dramatically after its change.
"""

import pytest

from bench_utils import emit
from repro.core.rank_dynamics import churn_by_rank
from repro.providers.base import ListArchive


def _split_alexa(bench_run, bench_config):
    """Return (pre-change, post-change) Alexa sub-archives (AL1318 vs AL18)."""
    change_date = bench_config.date_of(bench_config.alexa_change_day)
    pre = ListArchive(provider="alexa")
    post = ListArchive(provider="alexa")
    for snapshot in bench_run.alexa:
        (pre if snapshot.date < change_date else post).add(snapshot)
    return pre, post


@pytest.mark.bench
def test_fig1c_change_over_rank(benchmark, bench_run, bench_config):
    sizes = [50, 100, 200, 400, 1000, 2000, bench_config.list_size]
    pre_alexa, post_alexa = _split_alexa(bench_run, bench_config)
    archives = {
        "alexa (pre-change)": pre_alexa,
        "alexa (post-change)": post_alexa,
        "umbrella": bench_run.umbrella,
        "majestic": bench_run.majestic,
    }

    curves = benchmark.pedantic(
        lambda: {name: churn_by_rank(archive, sizes) for name, archive in archives.items()},
        rounds=1, iterations=1)

    lines = [f"{'list':<22} " + " ".join(f"top{size:>6}" for size in sizes)]
    for name, curve in curves.items():
        lines.append(f"{name:<22} " + " ".join(f"{100 * curve[size]:>8.2f}%" for size in sizes))
    emit("Figure 1c: average % daily change over rank", lines)

    top_k, full = sizes[3], sizes[-1]
    # Instability increases with rank for Alexa and Umbrella but not
    # meaningfully for Majestic; Alexa's whole curve rises after the change
    # (its Top-1k churn grew from 0.62% to 7.7% in the paper).
    assert curves["umbrella"][full] > curves["umbrella"][top_k]
    assert curves["alexa (post-change)"][full] > curves["alexa (post-change)"][top_k]
    assert curves["majestic"][full] < 0.02
    assert curves["alexa (post-change)"][top_k] > 3 * curves["alexa (pre-change)"][top_k]
    assert curves["alexa (post-change)"][full] > curves["umbrella"][full]

    benchmark.extra_info["alexa_topk_pre_pct"] = round(100 * curves["alexa (pre-change)"][top_k], 2)
    benchmark.extra_info["alexa_topk_post_pct"] = round(100 * curves["alexa (post-change)"][top_k], 2)
