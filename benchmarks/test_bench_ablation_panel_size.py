"""Ablation: browser-panel size vs long-tail rank stability.

The paper notes Alexa's ranks in the long tail rest on "significantly
smaller and hence less reliable numbers".  This ablation regenerates the
panel-based list from panels of different sizes (by thinning the observed
traffic) and quantifies how the long tail's churn explodes as the panel
shrinks — the mechanism behind both Figure 1c and the January 2018 change.
"""

import numpy as np
import pytest

from bench_utils import emit
from repro.providers.alexa import AlexaProvider


def _tail_churn(provider, days, head, full):
    snapshots = [provider.snapshot(day) for day in days]
    head_churn = []
    tail_churn = []
    for a, b in zip(snapshots, snapshots[1:]):
        head_a, head_b = set(a.entries[:head]), set(b.entries[:head])
        full_a, full_b = set(a.entries[:full]), set(b.entries[:full])
        head_churn.append(len(head_a - head_b) / max(1, len(head_a)))
        tail_churn.append(len(full_a - full_b) / max(1, len(full_a)))
    return float(np.mean(head_churn)), float(np.mean(tail_churn))


@pytest.mark.bench
def test_ablation_panel_size(benchmark, bench_run, bench_config):
    days = list(range(3, 10))
    head = bench_config.top_k
    full = bench_config.list_size
    # post_change_panel_factor thins the panel; change_day=0 applies it to
    # every day, so the factor directly plays the role of the panel size.
    panel_factors = (1.0, 0.25, 0.05)

    def compute():
        results = {}
        for factor in panel_factors:
            if factor == 1.0:
                provider = AlexaProvider(bench_run.internet, bench_run.traffic,
                                         window_days=1, change_day=None,
                                         config=bench_config)
            else:
                provider = AlexaProvider(bench_run.internet, bench_run.traffic,
                                         window_days=1, change_day=0,
                                         post_change_panel_factor=factor,
                                         config=bench_config)
            results[factor] = _tail_churn(provider, days, head, full)
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'panel factor':<14} {'top-%d churn' % head:>15} {'full-list churn':>16}"]
    for factor, (head_churn, tail_churn) in results.items():
        lines.append(f"{factor:<14} {100 * head_churn:>14.2f}% {100 * tail_churn:>15.2f}%")
    emit("Ablation: panel size vs rank stability", lines)

    # Smaller panels mean noisier counts and more churn, and the effect is
    # far stronger in the long tail than in the head.
    assert results[0.05][1] > results[0.25][1] > results[1.0][1]
    for factor in panel_factors:
        head_churn, tail_churn = results[factor]
        assert tail_churn >= head_churn

    benchmark.extra_info["tail_churn_by_factor"] = {
        str(factor): round(values[1], 4) for factor, values in results.items()}
