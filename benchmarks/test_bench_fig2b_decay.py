"""Figure 2b: list intersection against a fixed starting set.

Reproduces the decay of each list's intersection with its first-week
snapshots (median over the seven starting days): slow decay for Majestic,
fast and non-monotonic (weekly rebound) decay for the volatile lists.
"""

import pytest

from bench_utils import emit
from repro.core.stability import intersection_with_reference


@pytest.mark.bench
def test_fig2b_intersection_with_reference(benchmark, bench_run, bench_config):
    decay = benchmark.pedantic(
        lambda: {name: intersection_with_reference(archive, reference_days=range(7))
                 for name, archive in bench_run.archives.items()},
        rounds=1, iterations=1)

    offsets = sorted(next(iter(decay.values())))
    lines = [f"{'day offset':<12} " + " ".join(f"{name:>10}" for name in decay)]
    for offset in offsets:
        lines.append(f"{offset:<12} "
                     + " ".join(f"{decay[name].get(offset, float('nan')):>10.0f}"
                                for name in decay))
    emit("Figure 2b: intersection with the first week's lists", lines)

    list_size = bench_config.list_size
    last = max(offsets)
    # Day-0 intersections equal the list size; Majestic retains most of its
    # starting set while the volatile lists lose a large share of it.
    for name in decay:
        assert decay[name][0] == pytest.approx(list_size)
    assert decay["majestic"][last] > 0.9 * list_size
    assert decay["umbrella"][last] < decay["majestic"][last]
    assert decay["alexa"][last] < decay["majestic"][last]

    # Non-monotonic decay for the lists with a weekly pattern: some set of
    # domains leaves and re-joins, so the curve rebounds at least once.
    def rebounds(series):
        values = [series[o] for o in sorted(series)]
        return any(later > earlier + 1 for earlier, later in zip(values, values[1:]))

    assert rebounds(decay["umbrella"]) or rebounds(decay["alexa"])

    benchmark.extra_info["final_intersection"] = {name: decay[name][last] for name in decay}
