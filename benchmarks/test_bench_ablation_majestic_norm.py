"""Ablation: Majestic's /24-subnet normalisation of backlink counts.

Majestic originally ranked by raw referring-link counts and later switched
to counting referring /24 subnets "to limit the influence of single IP
addresses" (Section 7.3).  This ablation compares the two rankings over
the same crawl data: without normalisation, a few heavy linkers reshuffle
the ranking substantially.
"""

import pytest

from bench_utils import emit
from repro.providers.majestic import MajesticProvider
from repro.stats.kendall import kendall_tau_ranked_lists


@pytest.mark.bench
def test_ablation_majestic_subnet_normalisation(benchmark, bench_run, bench_config):
    day = bench_config.n_days - 1

    def compute():
        normalised = MajesticProvider(bench_run.internet, bench_run.traffic,
                                      config=bench_config, normalise_by_subnet=True)
        raw = MajesticProvider(bench_run.internet, bench_run.traffic,
                               config=bench_config, normalise_by_subnet=False)
        return normalised.snapshot(day), raw.snapshot(day)

    normalised_snapshot, raw_snapshot = benchmark.pedantic(compute, rounds=1, iterations=1)

    top_k = bench_config.top_k
    overlap_full = len(normalised_snapshot.domain_set() & raw_snapshot.domain_set())
    overlap_head = len(set(normalised_snapshot.entries[:top_k])
                       & set(raw_snapshot.entries[:top_k]))
    tau = kendall_tau_ranked_lists(normalised_snapshot.entries[:top_k],
                                   raw_snapshot.entries[:top_k])

    lines = [
        f"full-list overlap: {overlap_full} of {bench_config.list_size}",
        f"top-{top_k} overlap: {overlap_head} of {top_k}",
        f"Kendall's tau of the top-{top_k} ordering: {tau:.3f}",
        f"top-10 (normalised): {', '.join(normalised_snapshot.entries[:10])}",
        f"top-10 (raw links):  {', '.join(raw_snapshot.entries[:10])}",
    ]
    emit("Ablation: Majestic /24-subnet normalisation", lines)

    # A large part of the membership survives, but far from all of it, and
    # the ordering changes noticeably — which is why Majestic's switch to
    # subnet counting mattered.
    assert overlap_full > 0.4 * bench_config.list_size
    assert overlap_full < 0.95 * bench_config.list_size
    assert tau < 0.98
    assert normalised_snapshot.entries != raw_snapshot.entries

    benchmark.extra_info["kendall_tau_top_k"] = round(float(tau), 3)
    benchmark.extra_info["head_overlap"] = overlap_head
