"""Ablation: Umbrella's ranking metric (unique clients vs raw query volume).

Section 7.2 concludes the Umbrella rank is driven by the number of
distinct client sources, not raw query volume — "a reasonable and
considerate choice [that] makes the ranking less susceptible to individual
heavy hitters".  This ablation re-ranks the same traffic with a pure
query-volume metric and shows the injected heavy-hitter measurement
(1k probes x 100 queries) would overtake the many-probes measurement.
"""

import pytest

from bench_utils import emit
from repro.providers.umbrella import UmbrellaProvider
from repro.ranking.manipulation import UmbrellaInjectionExperiment


@pytest.mark.bench
def test_ablation_umbrella_ranking_metric(benchmark, bench_run, bench_config):
    day = bench_config.n_days // 2

    def compute():
        unique_based = UmbrellaProvider(bench_run.internet, bench_run.traffic,
                                        config=bench_config,
                                        unique_client_weight=1.0, query_volume_weight=0.05)
        volume_based = UmbrellaProvider(bench_run.internet, bench_run.traffic,
                                        config=bench_config,
                                        unique_client_weight=0.0, query_volume_weight=1.0)
        outcomes = {}
        for label, provider in (("unique-clients", unique_based),
                                ("query-volume", volume_based)):
            experiment = UmbrellaInjectionExperiment(provider)
            outcomes[label] = experiment.probes_vs_volume_effect(day)
        return outcomes

    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'ranking metric':<18} {'10k probes @ 1 q/day':>22} {'1k probes @ 100 q/day':>22}"]
    for label, ranks in outcomes.items():
        lines.append(f"{label:<18} {str(ranks['10k-probes-1q']):>22} "
                     f"{str(ranks['1k-probes-100q']):>22}")
    emit("Ablation: Umbrella ranking metric (unique clients vs query volume)", lines)

    unique = outcomes["unique-clients"]
    volume = outcomes["query-volume"]
    # Under the real (unique-client) metric, many probes beat many queries.
    assert unique["10k-probes-1q"] is not None
    assert unique["10k-probes-1q"] < unique["1k-probes-100q"]
    # Under a raw-volume metric, the heavy hitter catches up or overtakes:
    # the probe-count advantage shrinks markedly.
    if volume["10k-probes-1q"] is not None and volume["1k-probes-100q"] is not None:
        unique_gap = unique["1k-probes-100q"] - unique["10k-probes-1q"]
        volume_gap = volume["1k-probes-100q"] - volume["10k-probes-1q"]
        assert volume_gap < unique_gap

    benchmark.extra_info["outcomes"] = {
        label: {k: v for k, v in ranks.items()} for label, ranks in outcomes.items()}
