"""Figure 6: DNS characteristics of the lists and the population over time.

Reproduces the NXDOMAIN, IPv6-adoption and CAA-adoption time series for
the three Top-1M lists and the com/net/org general population (measured
weekly, like the paper's zone scans).
"""

import numpy as np
import pytest

from bench_utils import emit
from repro.measurement.harness import TargetSet
from repro.measurement.report import daily_series


@pytest.mark.bench
def test_fig6_dns_characteristics_over_time(benchmark, bench_run, bench_harness, bench_config):
    population = TargetSet.from_zonefile(bench_run.zonefile)

    def compute():
        series = {}
        for metric in ("nxdomain", "ipv6", "caa"):
            series[metric] = daily_series(bench_harness, bench_run.archives, metric=metric,
                                          population=population, sample_every=7)
        return series

    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for metric, per_target in series.items():
        lines.append(f"-- {metric} (% of list entries) --")
        dates = sorted(next(iter(per_target.values())))
        lines.append(f"{'target':<14}" + "".join(f"{d.isoformat():>13}" for d in dates))
        for target, values in per_target.items():
            lines.append(f"{target:<14}" + "".join(f"{values[d]:>12.2f}%" for d in dates))
    emit("Figure 6: DNS characteristics over time", lines)

    def mean_of(metric, target):
        return float(np.mean(list(series[metric][target].values())))

    # Figure 6a: NXDOMAIN share — Umbrella and Majestic exceed the general
    # population, Alexa is essentially free of unresolvable names.
    assert mean_of("nxdomain", "umbrella") > mean_of("nxdomain", "com/net/org")
    assert mean_of("nxdomain", "majestic") > mean_of("nxdomain", "com/net/org")
    assert mean_of("nxdomain", "alexa") < mean_of("nxdomain", "com/net/org")

    # Figure 6b/6c: IPv6 and CAA adoption — every list exceeds the
    # population significantly.
    for metric in ("ipv6", "caa"):
        for target in ("alexa", "umbrella", "majestic"):
            assert mean_of(metric, target) > 1.5 * mean_of(metric, "com/net/org"), (metric, target)

    # Stability over time: the population's values barely move, while the
    # volatile lists' values change from day to day (the paper's
    # "results depend on the day the list was downloaded").
    for metric in ("ipv6", "caa"):
        population_values = list(series[metric]["com/net/org"].values())
        assert max(population_values) - min(population_values) < 1e-9

    benchmark.extra_info["means"] = {
        metric: {target: round(mean_of(metric, target), 2) for target in per_target}
        for metric, per_target in series.items()}
