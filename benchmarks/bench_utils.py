"""Helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Iterable


def emit(title: str, lines: Iterable[object]) -> None:
    """Print a reproduced table/figure in a uniform, greppable format.

    Run the benchmarks with ``pytest benchmarks/ --benchmark-only -s`` to
    see the reproduced rows/series alongside the timing results.
    """
    print(f"\n===== {title} =====")
    for line in lines:
        print(f"  {line}")
