"""Ablation: Alexa's ranking-window length (the January 2018 change).

The paper attributes Alexa's sudden instability to a (presumed) shortening
of its aggregation window.  This ablation regenerates the Alexa-style list
with different window lengths over the same traffic and measures the
resulting daily churn and weekly pattern — isolating the design choice the
paper could only observe from the outside.
"""

import numpy as np
import pytest

from bench_utils import emit
from repro.providers.alexa import AlexaProvider


def _churn_series(provider, days):
    snapshots = [provider.snapshot(day) for day in days]
    return [len(a.domain_set() - b.domain_set()) / len(a)
            for a, b in zip(snapshots, snapshots[1:])]


@pytest.mark.bench
def test_ablation_alexa_window_length(benchmark, bench_run, bench_config):
    days = list(range(10, bench_config.n_days))
    windows = (1, 3, bench_config.alexa_window_days)

    def compute():
        results = {}
        for window in windows:
            provider = AlexaProvider(bench_run.internet, bench_run.traffic,
                                     window_days=window, change_day=None,
                                     config=bench_config)
            results[window] = _churn_series(provider, days)
        return results

    churn = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [f"{'window (days)':<15} {'mean churn':>11} {'weekend/weekday churn ratio':>28}"]
    ratios = {}
    for window, series in churn.items():
        weekday = [c for offset, c in enumerate(series, start=days[0] + 1)
                   if not bench_config.is_weekend(offset)]
        weekend = [c for offset, c in enumerate(series, start=days[0] + 1)
                   if bench_config.is_weekend(offset)]
        ratio = (np.mean(weekend) / np.mean(weekday)) if weekday and weekend else float("nan")
        ratios[window] = ratio
        lines.append(f"{window:<15} {100 * np.mean(series):>10.2f}% {ratio:>28.2f}")
    emit("Ablation: Alexa sliding-window length vs churn", lines)

    means = {window: np.mean(series) for window, series in churn.items()}
    # Shorter windows mean more churn; the 1-day window is dramatically
    # less stable than the long window (the paper's observed regime change).
    assert means[1] > means[3] > means[windows[-1]]
    assert means[1] > 2 * means[windows[-1]]

    benchmark.extra_info["mean_churn_by_window"] = {w: round(float(m), 4)
                                                    for w, m in means.items()}
