"""Figure 1b: daily changes of Top-1M entries.

Reproduces the daily count of removed domains per list, the weekly pattern
of the DNS-based list, and the jump in Alexa's churn after its structural
change.
"""

import numpy as np
import pytest

from bench_utils import emit
from repro.core.stability import daily_changes


@pytest.mark.bench
def test_fig1b_daily_changes(benchmark, bench_run, bench_config):
    changes = benchmark(
        lambda: {name: daily_changes(archive) for name, archive in bench_run.archives.items()})

    dates = sorted(next(iter(changes.values())))
    lines = [f"{'date':<12} {'weekday':<9} " + " ".join(f"{name:>10}" for name in changes)]
    for date in dates:
        lines.append(f"{date.isoformat():<12} {date.strftime('%a'):<9} "
                     + " ".join(f"{changes[name][date]:>10}" for name in changes))
    emit("Figure 1b: daily changes of Top-1M entries", lines)

    change_day = bench_config.alexa_change_day
    change_date = bench_config.date_of(change_day)
    alexa_pre = np.mean([v for d, v in changes["alexa"].items() if d < change_date])
    alexa_post = np.mean([v for d, v in changes["alexa"].items() if d > change_date])
    umbrella_mean = np.mean(list(changes["umbrella"].values()))
    majestic_mean = np.mean(list(changes["majestic"].values()))

    # Paper shape (Table 2 µΔ): Majestic ~0.6%, Umbrella ~10-12%, Alexa
    # ~2% before its change and ~48% after, becoming the most unstable.
    list_size = bench_config.list_size
    assert majestic_mean < 0.02 * list_size
    assert 0.03 * list_size < umbrella_mean < 0.5 * list_size
    assert alexa_pre < umbrella_mean
    assert alexa_post > umbrella_mean
    assert alexa_post > 5 * alexa_pre

    # Weekly pattern: the DNS-based list changes more around weekends.
    weekend = [v for d, v in changes["umbrella"].items() if d.weekday() in (5, 6, 0)]
    weekday = [v for d, v in changes["umbrella"].items() if d.weekday() in (2, 3, 4)]
    assert np.mean(weekend) != pytest.approx(np.mean(weekday), rel=0.01)

    benchmark.extra_info.update({
        "alexa_pre": round(float(alexa_pre), 1),
        "alexa_post": round(float(alexa_post), 1),
        "umbrella": round(float(umbrella_mean), 1),
        "majestic": round(float(majestic_mean), 1),
    })
