"""Figure 8: HTTP/2 adoption over time per list and for the population.

Reproduces the HTTP/2 adoption time series for the Top-1k and Top-1M
scopes of every list and the com/net/org population: adoption in top lists
(especially the Top-1k heads) far exceeds the general population, and the
volatile lists' curves move with the weekday.
"""

import numpy as np
import pytest

from bench_utils import emit
from repro.measurement.harness import TargetSet
from repro.measurement.report import daily_series


@pytest.mark.bench
def test_fig8_http2_adoption_over_time(benchmark, bench_run, bench_harness, bench_config):
    top_k = bench_config.top_k
    population = TargetSet.from_zonefile(bench_run.zonefile)

    def compute():
        full = daily_series(bench_harness, bench_run.archives, metric="http2",
                            population=population, sample_every=4)
        heads = daily_series(bench_harness, bench_run.archives, metric="http2",
                             top_n=top_k, sample_every=4)
        return {**full, **heads}

    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    dates = sorted(series["com/net/org"])
    lines = [f"{'target':<16}" + "".join(f"{d.isoformat():>13}" for d in dates)]
    for target, values in series.items():
        lines.append(f"{target:<16}"
                     + "".join(f"{values.get(d, float('nan')):>12.1f}%" for d in dates))
    emit("Figure 8: HTTP/2 adoption over time", lines)

    def mean_of(target):
        return float(np.mean(list(series[target].values())))

    population_mean = mean_of("com/net/org")
    # Paper shape: ~8% adoption in the population, up to ~27% for Top-1M
    # lists and ~35-48% for Top-1k lists.
    for name in ("alexa", "umbrella", "majestic"):
        assert mean_of(name) > 1.5 * population_mean
        assert mean_of(f"{name}-{top_k}") > mean_of(name)
    assert population_mean < 15.0

    benchmark.extra_info["mean_adoption"] = {
        target: round(mean_of(target), 1) for target in series}
