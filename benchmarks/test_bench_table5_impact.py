"""Table 5: measurement characteristics across top lists vs the population.

Reproduces the full comparison table — NXDOMAIN, IPv6, CAA, CNAME, CDN,
unique origin ASes, top-5 AS concentration, TLS, HSTS and HTTP/2 — for the
Top-1k and Top-1M scopes of every list against the com/net/org general
population, with the paper's significance flags (▲ / ▼ / ■).
"""

import pytest

from bench_utils import emit
from repro.measurement.report import build_comparison_table
from repro.stats.summary import DeviationFlag


@pytest.mark.bench
def test_table5_measurement_impact(benchmark, bench_run, bench_harness, bench_config):
    table = benchmark.pedantic(
        lambda: build_comparison_table(bench_run, harness=bench_harness,
                                       sample_days=(-3, -1), top_k=bench_config.top_k),
        rounds=1, iterations=1)

    emit("Table 5: characteristics across lists vs the general population",
         table.render(precision=2).splitlines())

    adoption_rows = ("IPv6-enabled", "CAA-enabled", "CDNs (via CNAME)",
                     "TLS-capable", "HTTP2")
    scopes_1k = ("alexa-1k", "umbrella-1k", "majestic-1k")
    scopes_1m = ("alexa-1M", "umbrella-1M", "majestic-1M")

    # Headline: top lists significantly exaggerate adoption metrics, most
    # extremely for the Top-1k heads (up to two orders of magnitude for CAA
    # in the paper).
    for characteristic in adoption_rows:
        row = table[characteristic]
        for scope in scopes_1k:
            assert row.flag(scope) is DeviationFlag.EXCEEDS, (characteristic, scope)
        for scope in scopes_1m:
            assert row.cells[scope].value.mean >= row.base_value.mean, (characteristic, scope)
    caa = table["CAA-enabled"]
    assert caa.exaggeration_factor("alexa-1k") > 5
    assert caa.exaggeration_factor("alexa-1k") > caa.exaggeration_factor("alexa-1M")

    # NXDOMAIN: Umbrella and Majestic exceed the population, Alexa falls
    # behind it (Table 5's first row).
    nxdomain = table["NXDOMAIN"]
    assert nxdomain.flag("umbrella-1M") is DeviationFlag.EXCEEDS
    assert nxdomain.flag("majestic-1M") is DeviationFlag.EXCEEDS
    assert nxdomain.flag("alexa-1M") is DeviationFlag.FALLS_BEHIND
    assert nxdomain.cells["umbrella-1M"].value.mean > nxdomain.cells["majestic-1M"].value.mean

    # AS structure: the population reaches more distinct origin ASes than
    # any list, and the Top-1k heads are far more concentrated (top-5 AS
    # share) than the population.
    unique_as = table["Unique AS IPv4"]
    for scope in scopes_1m:
        assert unique_as.cells[scope].value.mean < unique_as.base_value.mean
    top5 = table["Top 5 AS (Share)"]
    for scope in scopes_1k:
        assert top5.cells[scope].value.mean > top5.base_value.mean

    # Overall distortion: the vast majority of cells deviate significantly.
    summary = table.distortion_summary()
    overall = sum(summary.values()) / len(summary)
    assert overall > 0.6

    benchmark.extra_info["distortion_share"] = {k: round(v, 2) for k, v in summary.items()}
