"""Figure 3a: Kolmogorov-Smirnov distance between weekend and weekday ranks.

Reproduces the per-domain KS analysis: a substantial share of domains in
the volatile lists (post-change Alexa, Umbrella) have fully disjoint
weekday/weekend rank distributions, Majestic shows almost none, and the
weekday-vs-weekday control stays near zero for all lists.
"""

import pytest

from bench_utils import emit
from repro.core.weekly import weekday_weekend_ks, within_group_ks
from repro.providers.base import ListArchive


def _post_change_alexa(bench_run, bench_config) -> ListArchive:
    change_date = bench_config.date_of(bench_config.alexa_change_day)
    post = ListArchive(provider="alexa")
    for snapshot in bench_run.alexa:
        if snapshot.date >= change_date:
            post.add(snapshot)
    return post


@pytest.mark.bench
def test_fig3a_weekend_weekday_ks(benchmark, bench_run, bench_config):
    archives = {
        "alexa (post-change)": _post_change_alexa(bench_run, bench_config),
        "umbrella": bench_run.umbrella,
        "majestic": bench_run.majestic,
    }

    def compute():
        distances = {name: weekday_weekend_ks(archive) for name, archive in archives.items()}
        control = {name: within_group_ks(archive) for name, archive in archives.items()}
        return distances, control

    distances, control = benchmark.pedantic(compute, rounds=1, iterations=1)

    def disjoint_share(values):
        values = list(values)
        return sum(1 for v in values if v >= 0.999) / len(values) if values else 0.0

    def mean_of(values):
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    lines = [f"{'list':<22} {'domains':>8} {'KS = 1':>8} {'mean KS':>9} "
             f"{'mean control KS':>16}"]
    for name in archives:
        lines.append(f"{name:<22} {len(distances[name]):>8} "
                     f"{100 * disjoint_share(distances[name].values()):>7.1f}% "
                     f"{mean_of(distances[name].values()):>9.3f} "
                     f"{mean_of(control[name].values()):>16.3f}")
    emit("Figure 3a: KS distance, weekend vs weekday ranks", lines)

    # Paper shape: ~35% KS=1 for post-change Alexa 1M, >15% for Umbrella,
    # near zero for Majestic; the weekday-vs-weekday control distances are
    # much smaller than the weekend-vs-weekday distances for the volatile
    # lists (the paper reports <0.05 for 90% of domains over a full year;
    # at 4 weeks the granularity is coarser, so we compare the means).
    assert disjoint_share(distances["alexa (post-change)"].values()) > 0.10
    assert disjoint_share(distances["umbrella"].values()) > 0.05
    assert disjoint_share(distances["majestic"].values()) < 0.02
    assert disjoint_share(distances["umbrella"].values()) > \
        5 * disjoint_share(distances["majestic"].values())
    for name in ("alexa (post-change)", "umbrella"):
        assert mean_of(control[name].values()) < mean_of(distances[name].values())
        assert disjoint_share(control[name].values()) < \
            disjoint_share(distances[name].values())

    benchmark.extra_info["ks1_share"] = {
        name: round(disjoint_share(values.values()), 3) for name, values in distances.items()}
