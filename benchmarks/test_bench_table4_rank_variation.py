"""Table 4: rank variation of example domains across the lists.

Reproduces the highest/median/lowest rank of the paper's six example
domains (google, facebook, netflix, jetblue, mdc.edu, puresight) over the
JOINT period in every list: head domains keep almost constant ranks,
lower-ranked domains vary by orders of magnitude.
"""

import pytest

from bench_utils import emit
from repro.core.rank_dynamics import rank_variation

EXAMPLE_DOMAINS = ("google.com", "facebook.com", "netflix.com",
                   "jetblue.com", "mdc.edu", "puresight.com")


@pytest.mark.bench
def test_table4_rank_variation(benchmark, bench_run):
    variation = benchmark(
        lambda: {name: rank_variation(archive, EXAMPLE_DOMAINS)
                 for name, archive in bench_run.archives.items()})

    lines = [f"{'domain':<16} " + " ".join(f"{name + ' hi/med/lo':>28}" for name in variation)]
    for domain in EXAMPLE_DOMAINS:
        cells = []
        for name in variation:
            row = variation[name][domain]
            if row.highest is None:
                cells.append(f"{'not listed':>28}")
            else:
                cells.append(f"{row.highest:>8} {row.median:>9.1f} {row.lowest:>9}")
        lines.append(f"{domain:<16} " + " ".join(cells))
    emit("Table 4: rank variation of example domains", lines)

    alexa = variation["alexa"]
    majestic = variation["majestic"]
    # Head domains: listed every day, tiny rank spread, always near the top.
    for domain in ("google.com", "facebook.com"):
        for provider in variation.values():
            row = provider[domain]
            assert row.always_listed
            assert row.highest <= 5
            assert row.lowest - row.highest <= 20
    # google.com tops every list most days (median rank 1 in the paper).
    assert alexa["google.com"].median <= 2

    # Mid/low-tier domains: jetblue sits well below the head and varies far
    # more; puresight is near the list boundary (huge spread or missing).
    jetblue_spread = alexa["jetblue.com"].lowest - alexa["jetblue.com"].highest
    google_spread = alexa["google.com"].lowest - alexa["google.com"].highest
    assert alexa["jetblue.com"].highest > 10
    assert jetblue_spread > 5 * max(1, google_spread)
    assert majestic["mdc.edu"].highest is None or majestic["mdc.edu"].highest > 50
    puresight = alexa["puresight.com"]
    assert (puresight.highest is None or not puresight.always_listed
            or (puresight.lowest - puresight.highest) > jetblue_spread)

    benchmark.extra_info["alexa_jetblue"] = (
        alexa["jetblue.com"].highest, alexa["jetblue.com"].lowest)
