#!/usr/bin/env python
"""Run the benchmark suite and write ``BENCH_*.json`` perf artifacts.

Six modes, all on by default:

* ``--suite``: run the ``test_bench_*`` paper-reproduction benchmarks
  under pytest-benchmark and write the raw timing JSON
  (``BENCH_suite.json``), so future PRs can track the perf trajectory.
* ``--speedup``: time the seed (pre-fast-path) implementations of the
  hot analyses against the current library on a 30-day × 3-provider
  simulated archive, assert the outputs are identical, and write the
  before/after comparison (``BENCH_fastpath.json``).
* ``--scenarios``: run every named scenario profile through the
  :class:`~repro.scenarios.ScenarioRunner` (cold caches per scenario),
  record wall time plus headline statistics and write
  ``BENCH_scenarios.json`` — one call per scenario, end to end.
* ``--service``: persist the 30-day × 3-provider corpus into an
  :class:`~repro.service.store.ArchiveStore`, then measure the serving
  layer (``BENCH_service.json``): store write/load and warm-start times,
  indexed domain-history lookups vs the naive full archive scan
  (asserted ≥10× — it is orders of magnitude), and HTTP requests/s per
  endpoint cold (LRU cleared) vs cached.
* ``--replication``: measure follower replication (``BENCH_replication.json``):
  full bootstrap resync of a populated leader, per-day replication lag
  (leader ingest of a 4000-entry day → follower caught up and flushed),
  and the cost of the dormant fault-injection points on the cached read
  path — the per-check guard cost over the per-request cost, asserted
  under 2% (the "no-op when disabled" contract), with the cost of an
  installed-but-inert plan recorded alongside for context.
* ``--interning``: compare the interned-id columnar pipeline against a
  faithful reconstruction of the string-based one on the same corpus
  (``BENCH_interning.json``): wall time and ``tracemalloc`` peak memory
  for ``intersection_over_time`` (identical output asserted, ≥1.5×
  speedup and a lower peak asserted on full-size runs; the peak
  assertion also runs on tiny CI archives), plus the Kendall-tau id
  lane and the per-day column-vs-tuple storage footprint.

One opt-in mode (excluded from the all-on default — it builds 1M-entry
corpora):

* ``--scale``: run the native-scale battery (``BENCH_scale.json``) at
  the ``paper_bench`` and ``full_1m`` presets of :mod:`repro.scale`:
  deterministic synthetic corpora, per-day ingest into a chunked
  :class:`~repro.service.store.ArchiveStore` (steady-state append of a
  1M-entry day asserted under 1 s), lazy head/point/full-day query
  timings with ``tracemalloc`` peaks (head peak asserted a small
  fraction of a full-day load), and the analysis battery under each
  preset's traced memory ceiling.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--suite] [--speedup]
        [--scenarios] [--service] [--interning] [--scale]
        [--out benchmarks/artifacts] [--days 30]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import sys
import time
from collections import Counter, defaultdict
from pathlib import Path
from typing import Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.intersection import intersection_over_time  # noqa: E402
from repro.core.weekly import WEEKEND_WEEKDAYS, sld_group_dynamics, weekday_weekend_ks  # noqa: E402
from repro.domain.name import normalise  # noqa: E402
from repro.domain.psl import DEFAULT_RULES  # noqa: E402
from repro.population.config import SimulationConfig  # noqa: E402
from repro.providers.simulation import clear_simulation_cache, run_simulation  # noqa: E402
from repro.scenarios import ScenarioRunner, profile_names  # noqa: E402
from repro.stats.kendall import kendall_tau_ranked_lists  # noqa: E402
from repro.stats.ks import ks_distance  # noqa: E402


# --------------------------------------------------------------------------
# Seed reference implementations (the pre-fast-path algorithms, verbatim in
# structure: O(labels²) PSL candidate enumeration, per-day re-normalisation,
# recursive merge-sort inversion counting).  They are the timing baseline
# and the correctness oracle for the fast paths.
# --------------------------------------------------------------------------

class SeedPsl:
    """Candidate-enumeration PSL matcher (the seed algorithm, unmemoised)."""

    def __init__(self, rules=DEFAULT_RULES) -> None:
        self._exact, self._wildcard, self._exception = set(), set(), set()
        for rule in rules:
            rule = rule.strip().lower().strip(".")
            if rule.startswith("!"):
                self._exception.add(rule[1:])
            elif rule.startswith("*."):
                self._wildcard.add(rule[2:])
            else:
                self._exact.add(rule)

    def public_suffix(self, name: str) -> Optional[str]:
        name = name.strip().lower().strip(".")
        if not name:
            return None
        labels = name.split(".")
        best: Optional[Sequence[str]] = None
        for start in range(len(labels)):
            candidate = labels[start:]
            cand_str = ".".join(candidate)
            parent = ".".join(candidate[1:])
            if cand_str in self._exception:
                match = candidate[1:]
                if best is None or len(match) > len(best):
                    best = match
                continue
            if cand_str in self._exact:
                if best is None or len(candidate) > len(best):
                    best = candidate
            if parent and parent in self._wildcard and cand_str not in self._exception:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is None:
            best = labels[-1:]
        return ".".join(best)

    def base_domain(self, name: str) -> Optional[str]:
        name = name.strip().lower().strip(".")
        if not name:
            return None
        suffix = self.public_suffix(name)
        if suffix is None or name == suffix:
            return None
        suffix_labels = suffix.count(".") + 1
        labels = name.split(".")
        if len(labels) <= suffix_labels:
            return None
        return ".".join(labels[-(suffix_labels + 1):])

    def base_or_name(self, name: str) -> str:
        cleaned = normalise(name)
        base = self.base_domain(cleaned)
        return base if base is not None else cleaned

    def sld(self, name: str) -> Optional[str]:
        base = self.base_domain(normalise(name))
        return None if base is None else base.split(".")[0]


def seed_intersection_over_time(archives, psl: SeedPsl):
    """The seed Figure-1a pipeline: full per-day per-provider re-normalisation."""
    from itertools import combinations

    date_sets = [set(a.dates()) for a in archives.values()]
    if not date_sets:
        return {}
    common_dates = sorted(set.intersection(*date_sets))
    series = {}
    for date in common_dates:
        sets = {name: frozenset(psl.base_or_name(entry) for entry in archive[date].entries)
                for name, archive in archives.items()}
        result = {}
        for name_a, name_b in combinations(sorted(sets), 2):
            result[(name_a, name_b)] = len(sets[name_a] & sets[name_b])
        if len(sets) >= 3:
            names = tuple(sorted(sets))
            result[names] = len(set.intersection(*(set(s) for s in sets.values())))
        series[date] = result
    return series


def seed_sld_group_dynamics(archive, psl: SeedPsl, threshold=0.4,
                            weekend=WEEKEND_WEEKDAYS, min_group_size=3):
    """The seed Figure-3b/3c pipeline: per-day full SLD re-parsing."""
    snapshots = archive.snapshots()
    all_dates = [s.date for s in snapshots]
    series = defaultdict(dict)
    for snapshot in snapshots:
        counts = Counter()
        for domain in snapshot.entries:
            sld = psl.sld(domain)
            if sld is not None:
                counts[sld] += 1
        for group, count in counts.items():
            series[group][snapshot.date] = count
    has_weekdays = any(d.weekday() not in weekend for d in all_dates)
    has_weekends = any(d.weekday() in weekend for d in all_dates)
    result = {}
    for group, per_day in series.items():
        weekday_counts = [per_day.get(d, 0) for d in all_dates if d.weekday() not in weekend]
        weekend_counts = [per_day.get(d, 0) for d in all_dates if d.weekday() in weekend]
        if not has_weekdays or not has_weekends:
            continue
        weekday_mean = sum(weekday_counts) / len(weekday_counts)
        weekend_mean = sum(weekend_counts) / len(weekend_counts)
        if max(weekday_mean, weekend_mean) < min_group_size:
            continue
        base = max(weekday_mean, 1e-9)
        if abs(weekend_mean - weekday_mean) / base > threshold:
            result[group] = (weekday_mean, weekend_mean,
                             {d: per_day.get(d, 0) for d in all_dates})
    return result


def seed_weekday_weekend_ks(archive, weekend=WEEKEND_WEEKDAYS, min_observations=2):
    """The seed Figure-3a pipeline: rebuild the rank dicts from scratch."""
    weekday_ranks, weekend_ranks = defaultdict(list), defaultdict(list)
    for snapshot in archive.snapshots():
        target = weekend_ranks if snapshot.date.weekday() in weekend else weekday_ranks
        for rank, domain in enumerate(snapshot.entries, start=1):
            target[domain].append(rank)
    distances = {}
    for domain in set(weekday_ranks) | set(weekend_ranks):
        a = weekday_ranks.get(domain, [])
        b = weekend_ranks.get(domain, [])
        if len(a) < min_observations or len(b) < min_observations:
            continue
        distances[domain] = ks_distance(a, b)
    return distances


def _seed_merge_sort_count(values):
    n = len(values)
    if n <= 1:
        return values, 0
    mid = n // 2
    left, inv_left = _seed_merge_sort_count(values[:mid])
    right, inv_right = _seed_merge_sort_count(values[mid:])
    merged, inversions, i, j = [], inv_left + inv_right, 0, 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            inversions += len(left) - i
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions


def seed_kendall_tau_ranked_lists(list_a, list_b):
    """The seed Figure-4 path: recursive merge sort + full tie accounting."""
    rank_a = {item: idx for idx, item in enumerate(list_a)}
    rank_b = {item: idx for idx, item in enumerate(list_b)}
    common = [item for item in list_a if item in rank_b]
    if len(common) < 2:
        raise ValueError("need at least two common items")
    missing = max(len(list_a), len(list_b))
    x = [rank_a.get(item, missing) for item in common]
    y = [rank_b.get(item, missing) for item in common]
    paired = sorted(zip(x, y), key=lambda p: (p[0], p[1]))
    _, discordant = _seed_merge_sort_count([p[1] for p in paired])
    n = len(x)
    total = n * (n - 1) // 2

    def ties(values):
        counts = Counter(values)
        return sum(c * (c - 1) // 2 for c in counts.values())

    ties_x, ties_y, ties_xy = ties(x), ties(y), ties(list(zip(x, y)))
    concordant = total - discordant - ties_x - ties_y + ties_xy
    denom_x, denom_y = total - ties_x, total - ties_y
    if denom_x == 0 or denom_y == 0:
        return 0.0
    return (concordant - discordant) / (denom_x * denom_y) ** 0.5


# --------------------------------------------------------------------------
# Comparison harness
# --------------------------------------------------------------------------

def _timed(fn):
    # Collect before timing so garbage from the previous stage (or a
    # pending gen-2 pass over it) is not charged to this measurement.
    gc.collect()
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _metrics_snapshot():
    """The process metrics registry as flat ``{sample: value}`` JSON.

    Embedded in benchmark artifacts so a perf regression is diagnosable
    from counters (appends, chunk inflations, cache hit ratios), not
    just wall clock.  Histogram bucket vectors are dropped — their
    ``_sum``/``_count`` samples carry the signal at artifact size.
    """
    from repro.obs import metrics

    samples = metrics.parse_exposition(metrics.render().decode("utf-8"))
    return {key: value for key, value in samples.items()
            if "_bucket{" not in key and not key.endswith("_bucket")}


def run_speedup(out_dir: Path, days: int) -> Path:
    config = SimulationConfig.benchmark(n_days=days)
    print(f"simulating {days}-day × 3-provider archive "
          f"(list size {config.list_size}) ...")
    run = run_simulation(config)
    archives = run.archives
    seed_psl = SeedPsl()
    comparisons = {}

    print("timing intersection_over_time (Figure 1a) ...")
    seed_series, seed_s = _timed(lambda: seed_intersection_over_time(archives, seed_psl))
    fast_series, fast_s = _timed(lambda: intersection_over_time(archives))
    assert fast_series == seed_series, "intersection series diverged from seed"
    comparisons["intersection_over_time"] = {
        "seed_seconds": seed_s, "fast_seconds": fast_s,
        "speedup": seed_s / fast_s, "identical_output": True,
        "days": len(fast_series)}

    print("timing sld_group_dynamics (Figures 3b/3c) ...")

    def seed_all_sld():
        return {name: seed_sld_group_dynamics(archive, seed_psl)
                for name, archive in archives.items()}

    def fast_all_sld():
        return {name: sld_group_dynamics(archive)
                for name, archive in archives.items()}

    seed_sld_result, seed_s = _timed(seed_all_sld)
    fast_sld, fast_s = _timed(fast_all_sld)
    for name in archives:
        seed_groups = seed_sld_result[name]
        fast_groups = fast_sld[name]
        assert set(seed_groups) == set(fast_groups), f"{name}: group sets diverged"
        for group, (wd_mean, we_mean, per_day) in seed_groups.items():
            dyn = fast_groups[group]
            assert dyn.weekday_mean == wd_mean, (name, group)
            assert dyn.weekend_mean == we_mean, (name, group)
            assert dict(dyn.series) == per_day, (name, group)
    comparisons["sld_group_dynamics"] = {
        "seed_seconds": seed_s, "fast_seconds": fast_s,
        "speedup": seed_s / fast_s, "identical_output": True,
        "groups": {name: len(groups) for name, groups in fast_sld.items()}}

    print("timing weekday_weekend_ks (Figure 3a) ...")
    seed_ks, seed_s = _timed(
        lambda: {name: seed_weekday_weekend_ks(archive) for name, archive in archives.items()})
    fast_ks, fast_s = _timed(
        lambda: {name: weekday_weekend_ks(archive) for name, archive in archives.items()})
    assert fast_ks == seed_ks, "KS distances diverged from seed"
    comparisons["weekday_weekend_ks"] = {
        "seed_seconds": seed_s, "fast_seconds": fast_s,
        "speedup": seed_s / fast_s, "identical_output": True}

    print("timing kendall_tau_ranked_lists (Figure 4) ...")
    alexa = archives["alexa"].snapshots()
    pairs = list(zip(alexa, alexa[1:]))
    seed_taus, seed_s = _timed(
        lambda: [seed_kendall_tau_ranked_lists(a.entries, b.entries) for a, b in pairs])
    fast_taus, fast_s = _timed(
        lambda: [kendall_tau_ranked_lists(a.entries, b.entries) for a, b in pairs])
    assert all(abs(f - s) < 1e-12 for f, s in zip(fast_taus, seed_taus)), \
        "tau values diverged from seed"
    comparisons["kendall_tau_ranked_lists"] = {
        "seed_seconds": seed_s, "fast_seconds": fast_s,
        "speedup": seed_s / fast_s, "identical_output": True,
        "pairs": len(pairs), "list_size": config.list_size}

    artifact = {
        "kind": "fastpath-comparison",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"n_days": config.n_days, "list_size": config.list_size,
                   "providers": sorted(archives)},
        "comparisons": comparisons,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_fastpath.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\n{'analysis':<28} {'seed':>9} {'fast':>9} {'speedup':>9}")
    for name, row in comparisons.items():
        print(f"{name:<28} {row['seed_seconds']:>8.2f}s {row['fast_seconds']:>8.2f}s "
              f"{row['speedup']:>8.1f}x")
    print(f"\nwrote {path}")
    return path


def run_scenarios(out_dir: Path) -> Path:
    """Time every scenario profile end to end (cold caches per scenario)."""
    import hashlib

    results = {}
    print(f"{'scenario':<20} {'seconds':>8}  headline")
    for name in profile_names():
        clear_simulation_cache()
        runner = ScenarioRunner(name)
        start = time.perf_counter()
        report = runner.run()
        elapsed = time.perf_counter() - start
        churn = {provider: section["stability"]["churn_fraction"]
                 for provider, section in sorted(report.providers.items())}
        fingerprint = json.dumps(report.fingerprint(), sort_keys=True)
        results[name] = {
            "seconds": elapsed,
            "n_days": report.config["n_days"],
            "list_size": report.config["list_size"],
            "churn_fraction": churn,
            "fingerprint_sha256": hashlib.sha256(fingerprint.encode("utf-8")).hexdigest(),
        }
        headline = "  ".join(f"{provider} {100 * value:.2f}%"
                             for provider, value in churn.items())
        print(f"{name:<20} {elapsed:>7.2f}s  churn {headline}")
    artifact = {
        "kind": "scenario-battery",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": results,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_scenarios.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return path


def _naive_history_scan(archive, domain):
    """The pre-index path: walk every snapshot, scan its entries."""
    observations = []
    for snapshot in archive:
        for position, name in enumerate(snapshot.entries):
            if name == domain:
                observations.append((snapshot.date, position + 1))
                break
    return observations


class _KeepAliveClient:
    """Minimal raw-socket HTTP/1.1 keep-alive client for load generation.

    ``urllib`` opens a TCP connection per request (three-way handshake +
    slow-start every time), and ``http.client`` — though persistent —
    burns more client CPU parsing responses than the server burns
    building them, so throughput measured through either says as much
    about the client as the service.  This client reuses one socket
    with ``TCP_NODELAY`` and parses the minimum (status line, headers,
    ``Content-Length`` body), so the measured ceiling is the server's.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        import socket

        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")

    def get(self, target: str) -> tuple[int, bytes]:
        self._sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii"))
        return self._read_response()

    def _read_response(self) -> tuple[int, bytes]:
        status_line = self._reader.readline()
        if not status_line.startswith(b"HTTP/1.1 "):
            raise OSError(f"bad status line: {status_line!r}")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise OSError("connection closed mid-headers")
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        return status, self._reader.read(length)

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass


def _pipelined_keepalive_rps(port: int, target: str, connections: int,
                             requests_per_connection: int) -> float:
    """Aggregate req/s over pipelined keep-alive connections, one thread.

    Each connection sends its whole request burst up front; a minimal
    streaming parser (find the blank line, read ``Content-Length``, skip
    the body) counts completed responses over a ``selectors`` loop.
    Responses may legitimately differ in size between workers (an
    ``X-Repro-Cache: local`` vs ``shared`` hit), so the parser frames
    each response individually instead of assuming a fixed size.  A
    thread-per-connection load generator measures its own GIL beyond a
    handful of connections; this client does not, so the measured
    ceiling is the server's — and the same client drives every server
    transport, so its residual overhead cancels out of any ratio.
    """
    import selectors
    import socket

    request = (f"GET {target} HTTP/1.1\r\n"
               f"Host: bench\r\n\r\n").encode("ascii")
    burst = request * requests_per_connection
    sel = selectors.DefaultSelector()
    socks = []
    try:
        for _ in range(connections):
            sock = socket.create_connection(("127.0.0.1", port), timeout=60)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            socks.append(sock)
        gc.collect()
        start = time.perf_counter()
        # per fd: [socket, unsent, completed, buffer, frame_end]
        # frame_end < 0 means the next head is still incomplete.
        states = {}
        for sock in socks:
            try:
                sent = sock.send(burst)
            except BlockingIOError:
                sent = 0
            outstanding = burst[sent:]
            events = selectors.EVENT_READ | (
                selectors.EVENT_WRITE if outstanding else 0)
            states[sock.fileno()] = [sock, outstanding, 0, bytearray(), -1]
            sel.register(sock, events)
        remaining = len(socks)
        deadline = time.monotonic() + 300
        while remaining:
            assert time.monotonic() < deadline, (
                "pipelined load never drained "
                f"({remaining} connections outstanding)")
            for key, events in sel.select(timeout=60):
                state = states[key.fd]
                sock = state[0]
                if events & selectors.EVENT_WRITE and state[1]:
                    sent = sock.send(state[1])
                    state[1] = state[1][sent:]
                    if not state[1]:
                        sel.modify(sock, selectors.EVENT_READ)
                if not events & selectors.EVENT_READ:
                    continue
                chunk = sock.recv(262144)
                assert chunk, "server closed mid-benchmark"
                buf = state[3]
                buf += chunk
                while True:
                    if state[4] < 0:
                        head_end = buf.find(b"\r\n\r\n")
                        if head_end < 0:
                            break
                        head = bytes(buf[:head_end])
                        assert head.startswith(b"HTTP/1.1 200"), head[:64]
                        length = next(
                            int(line.split(b":", 1)[1])
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length:"))
                        state[4] = head_end + 4 + length
                    if len(buf) < state[4]:
                        break
                    del buf[:state[4]]
                    state[4] = -1
                    state[2] += 1
                    if state[2] == requests_per_connection:
                        assert not buf, (
                            f"trailing bytes: {bytes(buf[:64])!r}")
                        sel.unregister(sock)
                        remaining -= 1
                        break
        elapsed = time.perf_counter() - start
    finally:
        sel.close()
        for sock in socks:
            sock.close()
    return (connections * requests_per_connection) / elapsed


def run_service(out_dir: Path, days: int) -> Path:
    """Benchmark the serving layer: store, index, and HTTP endpoints."""
    import tempfile
    import threading
    import urllib.request

    from repro.service.api import QueryService, create_server
    from repro.service.index import DomainIndex
    from repro.service.store import ArchiveStore

    config = SimulationConfig.benchmark(n_days=days)
    print(f"simulating {days}-day × 3-provider archive "
          f"(list size {config.list_size}) ...")
    run = run_simulation(config)
    archives = run.archives
    results = {}

    with tempfile.TemporaryDirectory() as tmp:
        print("persisting corpus into the archive store ...")
        store_dir = Path(tmp) / "store"
        _, write_s = _timed(lambda: ArchiveStore.from_archives(store_dir, archives))
        store = ArchiveStore(store_dir)
        warm_archives, load_s = _timed(store.load_archives)
        shard_bytes = sum(p.stat().st_size
                          for p in store_dir.rglob("*.rls"))
        csv_bytes = sum(len(f"{rank},{domain}\n")
                        for archive in archives.values()
                        for snapshot in archive
                        for rank, domain in enumerate(snapshot.entries, start=1))
        for name, loaded in warm_archives.items():
            assert [s.entries for s in loaded] == \
                [s.entries for s in archives[name]], f"{name}: store round trip drifted"
        results["store"] = {
            "write_seconds": write_s, "load_seconds": load_s,
            "snapshots": len(store), "shard_bytes": shard_bytes,
            "csv_equivalent_bytes": csv_bytes,
            "compression_ratio": csv_bytes / shard_bytes,
        }

        print("timing indexed history lookups vs naive archive scans ...")
        index, build_s = _timed(lambda: DomainIndex.from_archives(warm_archives))
        alexa = archives["alexa"]
        probes = list(alexa[0].entries[::40]) + \
            list(alexa[len(alexa) - 1].entries[-20:])
        probes = list(dict.fromkeys(probes))

        def scan_all():
            return [_naive_history_scan(alexa, domain) for domain in probes]

        def lookup_all():
            return [index.history(domain, "alexa") for domain in probes]

        scan_result, scan_s = _timed(scan_all)
        # One pass is microseconds; repeat for a stable measurement.
        lookup_rounds = 50
        lookup_result, lookup_total = _timed(
            lambda: [lookup_all() for _ in range(lookup_rounds)])
        lookup_s = lookup_total / lookup_rounds
        assert lookup_result[0] == scan_result, "index diverged from archive scan"
        speedup = scan_s / lookup_s
        assert speedup >= 10, (
            f"indexed lookups only {speedup:.1f}x over the archive scan")
        results["index"] = {
            "build_seconds": build_s, "probe_domains": len(probes),
            "scan_seconds": scan_s, "indexed_seconds": lookup_s,
            "speedup": speedup,
        }

        print("timing HTTP endpoints (cold vs cached) ...")
        service = QueryService(store)
        server = create_server(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            targets = {
                "meta": "/v1/meta",
                "history": f"/v1/domains/{probes[0]}/history?top_k=100",
                "stability": "/v1/providers/alexa/stability?top_n=400",
                "compare": "/v1/compare?providers=alexa,majestic,umbrella&top_n=400",
            }

            def fetch(target):
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{target}", timeout=60) as resp:
                    return resp.read()

            endpoints = {}
            for name, target in targets.items():
                service.clear_cache()
                _, cold_s = _timed(lambda: fetch(target))
                requests = 200 if name in ("meta", "history") else 50
                _, warm_total = _timed(
                    lambda: [fetch(target) for _ in range(requests)])
                # Same payload through a persistent connection: the
                # per-request mode above pays connection setup + teardown
                # per call; keep-alive is what pooled deployments (and
                # the worker-pool benchmark) actually see on the wire.
                client = _KeepAliveClient("127.0.0.1", port)
                try:
                    ka_requests = requests * 5
                    ka_bodies, ka_total = _timed(
                        lambda: [client.get(target)
                                 for _ in range(ka_requests)])
                finally:
                    client.close()
                assert all(status == 200 for status, _ in ka_bodies)
                assert ka_bodies[0][1] == fetch(target), \
                    f"{name}: keep-alive body diverged from per-request"
                endpoints[name] = {
                    "cold_seconds": cold_s,
                    "cached_requests_per_second": requests / warm_total,
                    "cached_keepalive_requests_per_second":
                        ka_requests / ka_total,
                    "cold_requests_per_second": 1.0 / cold_s,
                    "requests_timed": requests,
                    "keepalive_requests_timed": ka_requests,
                }
            results["endpoints"] = endpoints

            print("timing live appends (POST /v1/ingest) ...")
            import datetime

            last_date = store.dates("alexa")[-1]
            template = archives["alexa"][len(archives["alexa"]) - 1].entries
            ingest_days = 5
            ingest_times = []
            requery_times = []
            for offset in range(1, ingest_days + 1):
                day = last_date + datetime.timedelta(days=offset)
                body = json.dumps({
                    "provider": "alexa", "date": day.isoformat(),
                    "entries": list(template[offset:] + template[:offset]),
                }).encode("utf-8")

                def post_ingest():
                    request = urllib.request.Request(
                        f"http://127.0.0.1:{port}/v1/ingest", data=body,
                        method="POST",
                        headers={"Content-Type": "application/json"})
                    with urllib.request.urlopen(request, timeout=60) as resp:
                        return resp.read()

                _, ingest_s = _timed(post_ingest)
                ingest_times.append(ingest_s)
                _, requery_s = _timed(
                    lambda: fetch(targets["history"]))
                requery_times.append(requery_s)
            post_meta = json.loads(fetch("/v1/meta"))
            assert post_meta["providers"]["alexa"]["days"] == days + ingest_days, \
                "live appends not visible without restart"
            results["live_append"] = {
                "days_appended": ingest_days,
                "list_size": len(template),
                "mean_ingest_seconds": sum(ingest_times) / len(ingest_times),
                "mean_post_append_history_seconds":
                    sum(requery_times) / len(requery_times),
            }
        finally:
            server.shutdown()
            server.server_close()

    artifact = {
        "kind": "service-layer",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"n_days": config.n_days, "list_size": config.list_size,
                   "providers": sorted(archives)},
        "results": results,
        "metrics_snapshot": _metrics_snapshot(),
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_service.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nstore: write {results['store']['write_seconds']:.2f}s, "
          f"load+warm {results['store']['load_seconds']:.2f}s, "
          f"{results['store']['compression_ratio']:.1f}x smaller than CSV")
    print(f"index: {results['index']['speedup']:.0f}x over naive archive scan "
          f"({len(probes)} probe domains)")
    for name, row in results["endpoints"].items():
        print(f"endpoint {name:<10} cold {row['cold_seconds'] * 1000:7.1f} ms   "
              f"cached {row['cached_requests_per_second']:7.0f} req/s   "
              f"keep-alive {row['cached_keepalive_requests_per_second']:7.0f} req/s")
    live = results["live_append"]
    print(f"live append: {live['mean_ingest_seconds'] * 1000:.1f} ms/ingest "
          f"({live['list_size']}-entry day), first post-append history "
          f"{live['mean_post_append_history_seconds'] * 1000:.1f} ms")
    print(f"wrote {path}")
    return path


def run_workers(out_dir: Path, days: int, workers: int) -> Path:
    """Benchmark the pre-fork worker pool against single-process serving.

    Writes ``BENCH_workers.json``.  Both sides are measured on the same
    corpus, the same store files, and the same hardware, in two client
    modes each: *per-request* (one TCP connection per request — the
    historical ``BENCH_service.json`` client, and the baseline the
    pool's speedup target is defined against) and *keep-alive*
    (persistent connections; concurrent clients for the pool so the
    kernel's accept balancing actually spreads load).  Reporting both
    modes attributes the speedup honestly: connection reuse +
    ``TCP_NODELAY`` buys the first large factor, the forked workers buy
    the concurrency headroom on top.

    Byte-identity is asserted at every shared store version: each
    payload the pool serves must equal, byte for byte (and ETag for
    ETag), the single-process answer over the same store files —
    before AND after live ingests advance the version mid-benchmark.

    A second comparison pits the pool's two reader transports against
    each other at high connection counts: 512 concurrent keep-alive
    connections driven by a single-threaded selectors load client,
    against threaded readers and then against ``event_loop=True``
    readers over the same store files.  The event loop must deliver at
    least 1.5x the threaded pool's throughput there — idle connections
    cost it one fd instead of one thread — with the same byte/ETag
    identity guarantee at every shared version, live ingests included.
    """
    import datetime
    import tempfile
    import threading
    import urllib.request

    from repro.service.api import QueryService, create_server
    from repro.service.store import ArchiveStore
    from repro.service.workers import WorkerPool

    config = SimulationConfig.benchmark(n_days=days)
    print(f"simulating {days}-day × 3-provider archive "
          f"(list size {config.list_size}) ...")
    run = run_simulation(config)
    results = {}

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        print("persisting corpus into the archive store ...")
        ArchiveStore.from_archives(store_dir, run.archives).close()

        probe = run.archives["alexa"][0].entries[0]
        targets = {
            "meta": "/v1/meta",
            "history": f"/v1/domains/{probe}/history?top_k=100",
            "stability": "/v1/providers/alexa/stability?top_n=400",
        }

        def fetch_once(port, target):
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{target}", timeout=60) as resp:
                return resp.headers.get("ETag"), resp.read()

        def measure_modes(port, per_request_n, keepalive_n, clients):
            """Both client modes against one port; returns req/s dict."""
            modes = {}
            target = targets["meta"]
            _, per_total = _timed(
                lambda: [fetch_once(port, target)
                         for _ in range(per_request_n)])
            modes["per_request_rps"] = per_request_n / per_total

            client = _KeepAliveClient("127.0.0.1", port)
            try:
                _, single_total = _timed(
                    lambda: [client.get(target)
                             for _ in range(keepalive_n)])
            finally:
                client.close()
            modes["keepalive_rps"] = keepalive_n / single_total

            # Concurrent mode: the single-threaded pipelined client, best
            # of three trials — a thread-per-connection generator would
            # measure its own GIL here, not the server.
            modes["keepalive_concurrent_rps"] = max(
                _pipelined_keepalive_rps(
                    port, target, clients, keepalive_n // clients)
                for _trial in range(3))
            modes["concurrent_clients"] = clients
            modes["per_request_requests"] = per_request_n
            modes["keepalive_requests"] = keepalive_n
            return modes

        # -- single-process baseline (the BENCH_service.json client) --
        print("measuring single-process baseline (both client modes) ...")
        store = ArchiveStore(store_dir, create=False)
        service = QueryService(store)
        server = create_server(service)
        port = server.server_address[1]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        fetch_once(port, targets["meta"])  # warm the cache
        results["single_process"] = measure_modes(
            port, per_request_n=300, keepalive_n=1500, clients=workers)
        server.shutdown()
        server.server_close()
        store.close()

        # -- the pool, with byte-identity checked at every version -----
        print(f"measuring {workers}-worker pool ...")
        reference_store = ArchiveStore(store_dir, create=False,
                                       read_only=True)
        reference = QueryService(reference_store, role="reader")

        def assert_byte_identity(pool, version_label):
            reference.refresh_from_disk()
            checked = {}
            for name, target in targets.items():
                expected = reference.handle_request(target)
                etags, bodies = set(), set()
                for _ in range(workers * 4):
                    etag, body = fetch_once(pool.port, target)
                    etags.add(etag)
                    bodies.add(body)
                assert bodies == {expected.body}, \
                    f"{version_label}/{name}: pool bytes diverged"
                assert etags == {expected.headers.get("ETag")}, \
                    f"{version_label}/{name}: pool ETags diverged"
                checked[name] = len(expected.body)
            return checked

        with WorkerPool(store_dir, workers=workers,
                        poll_interval=0.05) as pool:
            version_zero = reference_store.version
            identity = {
                f"v{version_zero}": assert_byte_identity(
                    pool, f"v{version_zero}")}
            results["pool"] = measure_modes(
                pool.port, per_request_n=300, keepalive_n=1500,
                clients=workers)

            print("live ingest through the pool (forwarded to writer) ...")
            last_date = reference_store.dates("alexa")[-1]
            template = run.archives["alexa"][0].entries
            ingest_seconds = []
            for offset in (1, 2):
                day = last_date + datetime.timedelta(days=offset)
                body = json.dumps({
                    "provider": "alexa", "date": day.isoformat(),
                    "entries": list(template[offset:] + template[:offset]),
                }).encode("utf-8")
                request = urllib.request.Request(
                    f"http://127.0.0.1:{pool.port}/v1/ingest", data=body,
                    method="POST",
                    headers={"Content-Type": "application/json"})

                def post():
                    with urllib.request.urlopen(request, timeout=60) as r:
                        return r.read()

                _, ingest_s = _timed(post)
                ingest_seconds.append(ingest_s)
                version = version_zero + offset
                deadline = time.perf_counter() + 10
                while time.perf_counter() < deadline:
                    seen = {json.loads(fetch_once(pool.port,
                                                  "/v1/meta")[1])
                            ["store_version"] for _ in range(workers * 3)}
                    if seen == {version}:
                        break
                # Every shared version: byte-identical, ETag-identical.
                identity[f"v{version}"] = assert_byte_identity(
                    pool, f"v{version}")
            results["live_ingest"] = {
                "days_appended": len(ingest_seconds),
                "mean_ingest_seconds":
                    sum(ingest_seconds) / len(ingest_seconds),
            }
            results["byte_identity"] = {
                "versions_checked": sorted(identity),
                "targets_per_version": len(targets),
                "identical": True,  # asserted above; recorded for readers
            }
            results["pool_topology"] = pool.describe()

        # -- threaded vs event-loop readers at 512 connections ----------
        el_connections = 512
        el_per_connection = 16

        def high_concurrency_rps(port: int) -> float:
            """Best of three pipelined trials at ``el_connections``."""
            return max(
                _pipelined_keepalive_rps(port, targets["meta"],
                                         el_connections, el_per_connection)
                for _trial in range(3))

        print(f"measuring threaded readers at {el_connections} "
              f"keep-alive connections ...")
        with WorkerPool(store_dir, workers=workers,
                        poll_interval=0.05) as pool:
            fetch_once(pool.port, targets["meta"])  # warm shared cache
            threaded_rps = high_concurrency_rps(pool.port)

        print(f"measuring event-loop readers at {el_connections} "
              f"keep-alive connections ...")
        with WorkerPool(store_dir, workers=workers, poll_interval=0.05,
                        event_loop=True) as pool:
            fetch_once(pool.port, targets["meta"])
            event_loop_rps = high_concurrency_rps(pool.port)
            # Identity at the current shared version, then across two
            # more live ingests — the event loop serves the same bytes
            # (zero-copy from the shared segment) at every version.
            el_identity = {}
            version = reference_store.version
            el_identity[f"v{version}"] = assert_byte_identity(
                pool, f"v{version}")
            for offset in (3, 4):
                day = last_date + datetime.timedelta(days=offset)
                body = json.dumps({
                    "provider": "alexa", "date": day.isoformat(),
                    "entries": list(template[offset:] + template[:offset]),
                }).encode("utf-8")
                request = urllib.request.Request(
                    f"http://127.0.0.1:{pool.port}/v1/ingest", data=body,
                    method="POST",
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=60) as r:
                    assert r.status == 200
                version += 1
                deadline = time.perf_counter() + 10
                while time.perf_counter() < deadline:
                    seen = {json.loads(fetch_once(pool.port,
                                                  "/v1/meta")[1])
                            ["store_version"] for _ in range(workers * 3)}
                    if seen == {version}:
                        break
                el_identity[f"v{version}"] = assert_byte_identity(
                    pool, f"v{version}")

        el_speedup = event_loop_rps / threaded_rps
        results["event_loop"] = {
            "connections": el_connections,
            "requests_per_connection": el_per_connection,
            "total_requests": el_connections * el_per_connection,
            "threaded_pool_rps": threaded_rps,
            "event_loop_pool_rps": event_loop_rps,
            "speedup": el_speedup,
            "byte_identity": {
                "versions_checked": sorted(el_identity),
                "targets_per_version": len(targets),
                "identical": True,  # asserted above
            },
        }

        reference_store.close()

    baseline_rps = results["single_process"]["per_request_rps"]
    # Best cached mode wins: the gate is the pool's serving capacity in
    # its best configuration versus the per-request single-process
    # baseline.  The pool now has two reader transports (threaded and
    # event-loop) and two client shapes; taking the max measures what
    # the pool can actually serve, not harness overhead or the slower
    # transport.
    pool_modes = {
        "keepalive_single": results["pool"]["keepalive_rps"],
        "keepalive_concurrent": results["pool"]["keepalive_concurrent_rps"],
        "threaded_pipelined_512": results["event_loop"]["threaded_pool_rps"],
        "event_loop_pipelined_512":
            results["event_loop"]["event_loop_pool_rps"],
    }
    pool_winning_mode = max(pool_modes, key=pool_modes.get)
    pool_rps = pool_modes[pool_winning_mode]
    speedup = pool_rps / baseline_rps
    results["speedup"] = {
        "baseline_single_process_per_request_rps": baseline_rps,
        "pool_cached_keepalive_rps": pool_rps,
        "pool_winning_mode": pool_winning_mode,
        "speedup": speedup,
        "attribution": {
            "keepalive_over_per_request_single_process":
                results["single_process"]["keepalive_rps"] / baseline_rps,
            "pool_over_single_process_keepalive":
                pool_rps / results["single_process"]["keepalive_rps"],
        },
    }
    # Print every measurement before gating on any of them, so a failed
    # gate still leaves the numbers it judged on the console.
    single = results["single_process"]
    pool_modes = results["pool"]
    print(f"\nsingle process: {single['per_request_rps']:7.0f} req/s "
          f"per-request, {single['keepalive_rps']:7.0f} req/s keep-alive")
    print(f"{workers}-worker pool: {pool_modes['per_request_rps']:7.0f} req/s "
          f"per-request, {pool_modes['keepalive_rps']:7.0f} req/s "
          f"keep-alive x1, {pool_modes['keepalive_concurrent_rps']:7.0f} "
          f"req/s keep-alive x{workers} clients")
    print(f"speedup over the per-request single-process baseline: "
          f"{speedup:.1f}x (>= 5x required)")
    event_loop_row = results["event_loop"]
    print(f"{event_loop_row['connections']} keep-alive connections: "
          f"threaded {event_loop_row['threaded_pool_rps']:7.0f} req/s, "
          f"event loop {event_loop_row['event_loop_pool_rps']:7.0f} req/s "
          f"({event_loop_row['speedup']:.2f}x, >= 1.5x required)")
    assert speedup >= 5.0, (
        f"pool cached throughput only {speedup:.1f}x the single-process "
        f"baseline (target: 5x)")
    assert el_speedup >= 1.5, (
        f"event-loop readers only {el_speedup:.2f}x the threaded pool "
        f"at {el_connections} keep-alive connections (target: 1.5x)")

    artifact = {
        "kind": "worker-pool",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"n_days": config.n_days, "list_size": config.list_size,
                   "workers": workers},
        "results": results,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_workers.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return path


def run_replication(out_dir: Path, days: int) -> Path:
    """Benchmark follower replication and the dormant fault-point cost."""
    import datetime
    import tempfile

    from repro import faults
    from repro.faults import FaultPlan, FaultRule
    from repro.providers.base import ListSnapshot
    from repro.service.api import QueryService
    from repro.service.replica import Replica
    from repro.service.store import ArchiveStore

    config = SimulationConfig.benchmark(n_days=days)
    print(f"simulating {days}-day × 3-provider archive "
          f"(list size {config.list_size}) ...")
    run = run_simulation(config)
    archives = run.archives
    results = {}

    with tempfile.TemporaryDirectory() as tmp:
        leader_store = ArchiveStore.from_archives(Path(tmp) / "leader",
                                                  archives)
        leader = QueryService(leader_store)

        def fetch(since, limit):
            response = leader.handle_request(
                f"/v1/replication/log?since={since}&max={limit}")
            assert response.status == 200, response.body
            return response.json()

        print("timing follower bootstrap (full log resync) ...")
        follower_store = ArchiveStore(Path(tmp) / "follower")
        replica = Replica(follower_store, fetch, batch=64,
                          sleep=lambda s: None)
        applied, bootstrap_s = _timed(replica.sync_to_leader)
        assert follower_store.version == leader_store.version
        results["bootstrap"] = {
            "entries_applied": applied,
            "seconds": bootstrap_s,
            "entries_per_second": applied / bootstrap_s,
        }

        print("timing per-day replication lag (ingest → follower flushed) ...")
        last_date = leader_store.dates("alexa")[-1]
        template = archives["alexa"][len(archives["alexa"]) - 1].entries
        lag_days = 5
        lags = []
        for offset in range(1, lag_days + 1):
            day = last_date + datetime.timedelta(days=offset)
            snapshot = ListSnapshot(
                "alexa", day, template[offset:] + template[:offset])
            leader.ingest(snapshot)
            _, lag_s = _timed(replica.sync_once)
            assert replica.staleness() == 0
            lags.append(lag_s)
        results["per_day_lag"] = {
            "days": lag_days,
            "list_size": len(template),
            "mean_seconds": sum(lags) / len(lags),
            "max_seconds": max(lags),
        }

        print("timing dormant fault points on the cached read path ...")
        # Disabled injection is one attribute check (`faults.ACTIVE is
        # not None`) per point, and the cached read path crosses exactly
        # one point (``api.request``).  Measure both sides of that ratio
        # directly: the guard's per-check cost in a tight loop, and the
        # cached request's cost best-of-N — their quotient is the
        # disabled-injection overhead, free of scheduler noise.
        faults.uninstall()
        target = "/v1/providers/alexa/stability"
        leader.handle_request(target)  # prime the LRU
        rounds, requests = 5, 400

        def hammer():
            for _ in range(requests):
                leader.handle_request(target)

        request_s = min(_timed(hammer)[1] for _ in range(rounds)) / requests

        guard_loops = 200_000

        def guard_loop():
            for _ in range(guard_loops):
                if faults.ACTIVE is not None:  # the disabled-path guard
                    raise AssertionError("no plan should be active")

        loop_s = min(_timed(guard_loop)[1] for _ in range(rounds))
        # Subtract the bare loop so only the guard expression is charged.
        noop_s = min(_timed(lambda: [None for _ in range(guard_loops)])[1]
                     for _ in range(rounds))
        guard_s = max(0.0, loop_s - noop_s) / guard_loops
        overhead = guard_s / request_s
        assert overhead < 0.02, (
            f"dormant fault points cost {overhead:.2%} on cached reads")

        # For context, also record the *enabled*-but-inert cost: a plan
        # installed whose rules match nothing still pays hit() lookups.
        inert = FaultPlan(0, [FaultRule("never.matched.point", "error")])
        faults.install(inert)
        try:
            inert_s = min(_timed(hammer)[1] for _ in range(rounds)) / requests
        finally:
            faults.uninstall()
        results["dormant_fault_overhead"] = {
            "requests_per_round": requests,
            "rounds_best_of": rounds,
            "cached_request_seconds": request_s,
            "guard_check_seconds": guard_s,
            "disabled_overhead_fraction": overhead,
            "bound": 0.02,
            "inert_plan_request_seconds": inert_s,
            "inert_plan_overhead_fraction": inert_s / request_s - 1.0,
        }

    artifact = {
        "kind": "replication",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"n_days": config.n_days, "list_size": config.list_size,
                   "providers": sorted(archives)},
        "results": results,
        "metrics_snapshot": _metrics_snapshot(),
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_replication.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    boot = results["bootstrap"]
    lag = results["per_day_lag"]
    dormant = results["dormant_fault_overhead"]
    print(f"\nbootstrap: {boot['entries_applied']} entries in "
          f"{boot['seconds']:.2f}s ({boot['entries_per_second']:.0f}/s)")
    print(f"per-day lag: mean {lag['mean_seconds'] * 1000:.1f} ms, "
          f"max {lag['max_seconds'] * 1000:.1f} ms "
          f"({lag['list_size']}-entry days)")
    print(f"dormant fault points: {dormant['disabled_overhead_fraction']:.4%} "
          f"of a cached read when disabled (bound {dormant['bound']:.0%}); "
          f"{dormant['inert_plan_overhead_fraction']:+.1%} with an inert "
          f"plan installed")
    print(f"wrote {path}")
    return path


# --------------------------------------------------------------------------
# Observability layer: hot-path overhead and scrape cost (PR 8)
# --------------------------------------------------------------------------

def run_obs(out_dir: Path, days: int) -> Path:
    """Benchmark the telemetry layer (PR 8) and write ``BENCH_obs.json``.

    Two claims are on the line:

    * The instrumentation added to the *cached read* path — exactly one
      plain-int increment (the LRU hit counter; registry instruments and
      trace ids live at the wire layer, which an in-process cached read
      never crosses) — costs under 2% of the request.  Measured with the
      same loop-minus-noop / best-of-rounds method as the dormant-fault
      guard in ``run_replication``.
    * ``GET /v1/metrics`` renders a frozen registry byte-stably (CI
      diffs two scrapes), and a scrape is cheap enough to poll.
    """
    import tempfile

    from repro.obs import metrics
    from repro.service.api import QueryService
    from repro.service.store import ArchiveStore

    config = SimulationConfig.benchmark(n_days=days)
    print(f"simulating {days}-day × 3-provider archive "
          f"(list size {config.list_size}) ...")
    run = run_simulation(config)
    results = {}

    with tempfile.TemporaryDirectory() as tmp:
        store = ArchiveStore.from_archives(Path(tmp) / "store", run.archives)
        service = QueryService(store)
        target = "/v1/providers/alexa/stability"
        assert service.handle_request(target).status == 200  # prime the LRU

        print("timing instrumented cached reads ...")
        rounds, requests = 5, 400

        def hammer():
            for _ in range(requests):
                service.handle_request(target)

        request_s = min(_timed(hammer)[1] for _ in range(rounds)) / requests

        instr_loops = 200_000

        def instr_loop():
            for _ in range(instr_loops):
                service._cache_hits += 1  # the one op the hit path gained

        loop_s = min(_timed(instr_loop)[1] for _ in range(rounds))
        # Subtract the bare loop so only the increment is charged.
        noop_s = min(_timed(lambda: [None for _ in range(instr_loops)])[1]
                     for _ in range(rounds))
        instr_s = max(0.0, loop_s - noop_s) / instr_loops
        overhead = instr_s / request_s
        assert overhead < 0.02, (
            f"hot-path telemetry costs {overhead:.2%} of a cached read")
        results["instrumented_cached_read"] = {
            "requests_per_round": requests,
            "rounds_best_of": rounds,
            "cached_request_seconds": request_s,
            "increment_seconds": instr_s,
            "overhead_fraction": overhead,
            "bound": 0.02,
        }

        print("timing /v1/metrics scrapes ...")
        scrape = service.handle_request("/v1/metrics")
        assert scrape.status == 200, scrape.body
        scrape_s = min(
            _timed(lambda: service.handle_request("/v1/metrics"))[1]
            for _ in range(rounds))
        # Determinism claim: a frozen registry renders identical bytes.
        frozen = metrics.REGISTRY.render()
        assert frozen == metrics.REGISTRY.render(), \
            "metrics rendering is not byte-stable"
        samples = metrics.parse_exposition(scrape.body.decode("utf-8"))
        results["scrape"] = {
            "seconds": scrape_s,
            "body_bytes": len(scrape.body),
            "samples": len(samples),
        }

    artifact = {
        "kind": "observability",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"n_days": config.n_days, "list_size": config.list_size,
                   "providers": sorted(run.archives)},
        "results": results,
        "metrics_snapshot": _metrics_snapshot(),
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_obs.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    hot = results["instrumented_cached_read"]
    scr = results["scrape"]
    print(f"\ninstrumented cached read: {hot['overhead_fraction']:.4%} "
          f"telemetry overhead (bound {hot['bound']:.0%}; "
          f"{hot['cached_request_seconds'] * 1e6:.2f} µs/request)")
    print(f"/v1/metrics scrape: {scr['seconds'] * 1000:.2f} ms, "
          f"{scr['body_bytes']} bytes, {scr['samples']} samples")
    print(f"wrote {path}")
    return path


# --------------------------------------------------------------------------
# Interned-id columnar core vs the string pipeline (PR 4)
# --------------------------------------------------------------------------

def _string_lane_intersection(archives, psl):
    """The pre-interning Figure-1a pipeline, reconstructed faithfully.

    Per-day raw string frozensets, a string-keyed base memo, string
    refcount deltas and string-set intersections — exactly the shape the
    library shipped before the columnar refactor (and the timing/memory
    baseline the interning comparison is measured against).
    """
    from itertools import combinations

    from repro.interning import base_of

    memo: dict = {}

    def base_of_str(name):
        base = memo.get(name)
        if base is None:
            base = memo[name] = base_of(name, psl)
        return base

    date_sets = [set(a.dates()) for a in archives.values()]
    common_dates = sorted(set.intersection(*date_sets))
    per_archive = {}
    for name, archive in archives.items():
        result = {}
        counts: dict[str, int] = {}
        prev_raw = None
        prev_frozen: frozenset = frozenset()
        for snapshot in archive:
            raw = snapshot.domain_set()
            if prev_raw is None:
                for entry in snapshot.entries:
                    base = base_of_str(entry)
                    counts[base] = counts.get(base, 0) + 1
                frozen = frozenset(counts)
            else:
                removed = prev_raw - raw
                added = raw - prev_raw
                if removed or added:
                    for entry in removed:
                        base = base_of_str(entry)
                        remaining = counts[base] - 1
                        if remaining:
                            counts[base] = remaining
                        else:
                            del counts[base]
                    for entry in added:
                        base = base_of_str(entry)
                        counts[base] = counts.get(base, 0) + 1
                    frozen = frozenset(counts)
                else:
                    frozen = prev_frozen
            result[snapshot.date] = frozen
            prev_raw = raw
            prev_frozen = frozen
        per_archive[name] = result
    series = {}
    for date in common_dates:
        sets = {name: per_day[date] for name, per_day in per_archive.items()}
        matrix = {}
        for name_a, name_b in combinations(sorted(sets), 2):
            matrix[(name_a, name_b)] = len(sets[name_a] & sets[name_b])
        if len(sets) >= 3:
            ordered = sorted(sets.values(), key=len)
            common = ordered[0]
            for other in ordered[1:]:
                common = common & other
            matrix[tuple(sorted(sets))] = len(common)
        series[date] = matrix
    return series


def _fresh_string_archives(archives):
    """Archives whose snapshots hold materialised string tuples, no caches.

    The string lane's at-rest representation: what every snapshot looked
    like before the columnar refactor.
    """
    from repro.providers.base import ListArchive, ListSnapshot

    return {name: ListArchive.from_snapshots(
        [ListSnapshot(provider=s.provider, date=s.date, entries=s.entries)
         for s in archive])
        for name, archive in archives.items()}


def _fresh_columnar_archives(archives):
    """Archives whose snapshots are pure id columns, no caches, no strings."""
    from repro.providers.base import ListArchive, ListSnapshot

    return {name: ListArchive.from_snapshots(
        [ListSnapshot.from_ids(provider=s.provider, date=s.date,
                               ids=s.entry_ids()[:])
         for s in archive])
        for name, archive in archives.items()}


def _traced_peak(fn):
    """Run ``fn`` under tracemalloc; return (result, peak_bytes)."""
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def run_interning(out_dir: Path, days: int) -> Path:
    """Interned-id columnar lane vs the string lane, time and peak memory."""
    from repro.core.intersection import intersection_over_time
    from repro.domain.psl import default_list
    from repro.interning import default_interner

    full_size = days >= 20
    config = SimulationConfig.benchmark(n_days=days)
    print(f"simulating {days}-day × 3-provider archive "
          f"(list size {config.list_size}) ...")
    run = run_simulation(config)
    archives = run.archives
    psl = default_list()
    # Warm the shared table and base column once: both lanes then start
    # from the same process state (names interned, bases resolved), so
    # the measurement isolates the pipelines, not one-time setup.
    resolve_base = default_interner().base_column(psl).base_id
    for archive in archives.values():
        for snapshot in archive:
            for domain_id in snapshot.entry_ids():
                resolve_base(domain_id)
    comparisons = {}

    print("timing intersection_over_time: string lane vs id lane ...")
    string_series, string_s = _timed(
        lambda: _string_lane_intersection(_fresh_string_archives(archives), psl))
    id_series, id_s = _timed(
        lambda: intersection_over_time(_fresh_columnar_archives(archives)))
    assert id_series == string_series, "id lane diverged from the string lane"

    print("tracing peak memory: string lane vs id lane ...")
    string_archives = _fresh_string_archives(archives)
    columnar_archives = _fresh_columnar_archives(archives)
    string_mem_series, string_peak = _traced_peak(
        lambda: _string_lane_intersection(string_archives, psl))
    id_mem_series, id_peak = _traced_peak(
        lambda: intersection_over_time(columnar_archives))
    assert id_mem_series == string_mem_series
    assert id_peak < string_peak, (
        f"columnar peak memory regressed: {id_peak} >= {string_peak} bytes")
    speedup = string_s / id_s
    if full_size:
        assert speedup >= 1.5, (
            f"interned intersection lane only {speedup:.2f}x over strings")
    comparisons["intersection_over_time"] = {
        "string_seconds": string_s, "interned_seconds": id_s,
        "speedup": speedup, "identical_output": True,
        "string_peak_bytes": string_peak, "interned_peak_bytes": id_peak,
        "peak_memory_ratio": string_peak / id_peak,
        "days": len(id_series)}

    print("timing kendall_tau_ranked_lists: string keys vs id columns ...")
    alexa = archives["alexa"].snapshots()
    pairs = list(zip(alexa, alexa[1:]))
    string_taus, string_s = _timed(
        lambda: [kendall_tau_ranked_lists(a.entries, b.entries) for a, b in pairs])
    id_taus, id_s = _timed(
        lambda: [kendall_tau_ranked_lists(a.entry_ids(), b.entry_ids())
                 for a, b in pairs])
    assert all(abs(f - s) < 1e-12 for f, s in zip(id_taus, string_taus)), \
        "id-lane tau values diverged"
    comparisons["kendall_tau_ranked_lists"] = {
        "string_seconds": string_s, "interned_seconds": id_s,
        "speedup": string_s / id_s, "identical_output": True,
        "pairs": len(pairs), "list_size": config.list_size}

    # At-rest storage: a day's rank column vs a day's string tuple (the
    # distinct name strings live once in the shared table either way).
    one_day = archives["alexa"][0]
    column_bytes = one_day.entry_ids().itemsize * len(one_day)
    tuple_bytes = sys.getsizeof(one_day.entries)
    storage = {
        "per_day_column_bytes": column_bytes,
        "per_day_tuple_bytes": tuple_bytes,
        "column_vs_tuple_ratio": tuple_bytes / column_bytes,
        "interned_domains": len(default_interner()),
    }

    artifact = {
        "kind": "interning-comparison",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"n_days": config.n_days, "list_size": config.list_size,
                   "providers": sorted(archives), "full_size": full_size},
        "comparisons": comparisons,
        "columnar_storage": storage,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_interning.json"
    # The recorded artifact's guarantee is "columnar peaks below the
    # string lane" (peak ratio > 1), which the unconditional assert above
    # re-checks on every run regardless of archive size; absolute ratios
    # vary across machines and --days, so the recorded one is printed for
    # trajectory, not asserted against.
    recorded_path = REPO_ROOT / "benchmarks" / "artifacts" / "BENCH_interning.json"
    if recorded_path.exists() and recorded_path != path.resolve():
        recorded = json.loads(recorded_path.read_text(encoding="utf-8"))
        recorded_ratio = recorded["comparisons"]["intersection_over_time"][
            "peak_memory_ratio"]
        current_ratio = comparisons["intersection_over_time"]["peak_memory_ratio"]
        print(f"recorded peak-memory ratio {recorded_ratio:.2f}x, "
              f"this run {current_ratio:.2f}x")
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\n{'analysis':<28} {'string':>9} {'interned':>9} {'speedup':>9}")
    for name, row in comparisons.items():
        print(f"{name:<28} {row['string_seconds']:>8.2f}s "
              f"{row['interned_seconds']:>8.2f}s {row['speedup']:>8.1f}x")
    row = comparisons["intersection_over_time"]
    print(f"peak memory: string {row['string_peak_bytes'] / 1e6:.1f} MB, "
          f"interned {row['interned_peak_bytes'] / 1e6:.1f} MB "
          f"({row['peak_memory_ratio']:.1f}x smaller)")
    print(f"wrote {path}")
    return path


def run_scale(out_dir: Path,
              scales: Sequence[str] = ("paper_bench", "full_1m")) -> Path:
    """Native-scale battery: chunked-store ingest/query plus analyses.

    For each scale preset, generate the deterministic synthetic corpus,
    time per-day ingest into a chunked :class:`ArchiveStore`, measure the
    lazy query paths (head / point rank / full day) with their
    ``tracemalloc`` peaks, and run the analysis battery under a traced
    memory ceiling.  Asserted invariants:

    * steady-state append of a day stays under 1 s (the Top-1M ingest
      target; the first-ever append pays the interning bootstrap and is
      recorded separately),
    * the analysis battery's peak stays under the preset's
      ``memory_budget_bytes``,
    * at chunk-dominated list sizes a head query's peak allocation is a
      small fraction of a full-day load (the chunked-store laziness
      contract),
    * the full-width daily change equals the generator's configured
      churn exactly (corpus correctness).
    """
    import statistics
    import tempfile

    from repro.core.stability import (cumulative_unique_domains, daily_changes,
                                      days_in_list, mean_daily_change,
                                      new_domains_per_day)
    from repro.scale import get_scale, synthetic_archives
    from repro.service.store import CHUNK_ENTRIES, ArchiveStore

    sections: dict[str, dict] = {}
    for scale_name in scales:
        scale = get_scale(scale_name)
        print(f"\n=== scale {scale.name}: {scale.list_size:,}-entry lists x "
              f"{scale.n_days} days x {len(scale.providers)} providers ===")
        print("generating synthetic corpus ...")
        archives, generate_s = _timed(lambda: synthetic_archives(scale))

        print("ingesting per-day into a chunked store ...")
        append_times: list[float] = []
        with tempfile.TemporaryDirectory(prefix=f"scale-{scale.name}-") as tmp:
            store_dir = Path(tmp) / "store"
            with ArchiveStore(store_dir) as store:
                for provider in sorted(archives):
                    for snapshot in archives[provider]:
                        _, seconds = _timed(lambda s=snapshot: store.append(s))
                        append_times.append(seconds)
                store_bytes = sum(f.stat().st_size
                                  for f in store_dir.rglob("*") if f.is_file())

                # The very first append bootstraps the store's interning
                # table (every name is new); afterwards a day only adds
                # its churned names — that is the steady state ingest of
                # a provider being tailed day by day.
                steady = append_times[1:]
                steady_median = statistics.median(steady)
                assert steady_median < 1.0, (
                    f"steady-state append of a {scale.list_size:,}-entry day "
                    f"took {steady_median:.2f}s (target: well under 1 s)")

                print("measuring lazy query paths ...")
                qp = scale.providers[0]
                last = store.dates(qp)[-1]
                top_k = scale.analysis_top_k
                # Warm once: lazy translation tables (gid<->sid) belong to
                # store-open cost, not to the per-query steady state.
                store.load_head(qp, last, top_k)
                head, head_s = _timed(lambda: store.load_head(qp, last, top_k))
                _, head_peak = _traced_peak(lambda: store.load_head(qp, last, top_k))
                probe_id = head.entry_ids()[top_k - 1]
                store.rank_of_id(qp, last, probe_id)
                rank, rank_s = _timed(lambda: store.rank_of_id(qp, last, probe_id))
                assert rank == top_k, f"probe id ranked {rank}, expected {top_k}"
                full, full_s = _timed(lambda: store.load_snapshot(qp, last))
                _, full_peak = _traced_peak(lambda: store.load_snapshot(qp, last))
                assert len(full) == scale.list_size
                if scale.list_size >= 16 * CHUNK_ENTRIES:
                    # Chunk-dominated regime: a head query must touch a
                    # handful of chunks, never inflate the day.
                    assert head_peak < full_peak / 4, (
                        f"head query peak {head_peak} bytes not well below "
                        f"full-day load peak {full_peak} bytes")

        print("running analysis battery under traced memory ceiling ...")
        window_days = min(7, scale.n_days)
        first = archives[scale.providers[0]]
        dates = first.dates()

        def battery():
            top_k = scale.analysis_top_k
            head_change = {p: mean_daily_change(a, top_n=top_k)
                           for p, a in archives.items()}
            head_new = {p: statistics.fmean(
                            new_domains_per_day(a, top_n=top_k).values())
                        for p, a in archives.items()}
            cumulative = cumulative_unique_domains(first, top_n=top_k)
            tenures = days_in_list(first, top_n=top_k)
            matrix = intersection_over_time(
                archives, top_n=top_k, normalise=False)
            all_three = tuple(sorted(archives))
            final_common = matrix[max(matrix)][all_three]
            # Full-width churn runs on a window: the architecture's whole
            # point is that day-level set analyses never need the entire
            # period of full-size sets resident at once.
            window = first.period(dates[0], dates[window_days - 1])
            full_width = mean_daily_change(window)
            return {
                "head_mean_daily_change": head_change,
                "head_mean_new_domains": head_new,
                "head_cumulative_unique": cumulative[max(cumulative)],
                "head_distinct_tenures": len(tenures),
                "head_final_three_way_intersection": final_common,
                "full_width_window_days": window_days,
                "full_width_mean_daily_change": full_width,
            }

        results, battery_s = _timed(lambda: _traced_peak(battery))
        results, battery_peak = results
        assert battery_peak < scale.memory_budget_bytes, (
            f"{scale.name} battery peaked at {battery_peak / 1e6:.0f} MB, "
            f"budget {scale.memory_budget_bytes / 1e6:.0f} MB")
        if scale.churn_per_day:
            assert results["full_width_mean_daily_change"] == scale.churn_per_day, (
                "synthetic corpus churn diverged from the configured rate")

        sections[scale.name] = {
            "config": {
                "list_size": scale.list_size, "n_days": scale.n_days,
                "providers": list(scale.providers),
                "analysis_top_k": scale.analysis_top_k,
                "churn_per_day": scale.churn_per_day,
                "memory_budget_bytes": scale.memory_budget_bytes,
            },
            "generate_seconds": generate_s,
            "ingest": {
                "days_appended": len(append_times),
                "bootstrap_first_day_seconds": append_times[0],
                "steady_state_seconds": {
                    "min": min(steady), "median": steady_median,
                    "max": max(steady)},
                "store_bytes": store_bytes,
            },
            "queries": {
                "head_n": scale.analysis_top_k,
                "head_seconds": head_s, "head_peak_bytes": head_peak,
                "rank_of_id_seconds": rank_s,
                "full_day_seconds": full_s, "full_day_peak_bytes": full_peak,
            },
            "analysis": {
                "battery_seconds": battery_s,
                "battery_peak_bytes": battery_peak,
                "results": results,
            },
        }
        print(f"  ingest: bootstrap {append_times[0]:.2f}s, steady median "
              f"{steady_median * 1e3:.0f}ms/day; store {store_bytes / 1e6:.1f} MB")
        print(f"  queries: head {head_s * 1e3:.1f}ms "
              f"(peak {head_peak / 1e3:.0f} KB), full day {full_s * 1e3:.0f}ms "
              f"(peak {full_peak / 1e6:.1f} MB)")
        print(f"  battery: {battery_s:.1f}s, peak {battery_peak / 1e6:.0f} MB "
              f"(budget {scale.memory_budget_bytes / 1e6:.0f} MB)")

    artifact = {
        "kind": "scale-battery",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scales": sections,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_scale.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return path


def run_suite(out_dir: Path) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_suite.json"
    command = [
        sys.executable, "-m", "pytest", str(REPO_ROOT / "benchmarks"),
        "--benchmark-only", "-q", f"--benchmark-json={path}",
    ]
    env = {**os.environ,
           "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", "")}
    print("running benchmark suite:", " ".join(command))
    completed = subprocess.run(command, env=env, cwd=str(REPO_ROOT))
    if completed.returncode != 0:
        raise SystemExit(completed.returncode)
    print(f"wrote {path}")
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", action="store_true",
                        help="run only the pytest-benchmark suite")
    parser.add_argument("--speedup", action="store_true",
                        help="run only the seed-vs-fastpath comparison")
    parser.add_argument("--scenarios", action="store_true",
                        help="run only the scenario-profile battery")
    parser.add_argument("--service", action="store_true",
                        help="run only the serving-layer benchmarks")
    parser.add_argument("--interning", action="store_true",
                        help="run only the interned-columnar-vs-string comparison")
    parser.add_argument("--replication", action="store_true",
                        help="run only the follower-replication benchmarks")
    parser.add_argument("--obs", action="store_true",
                        help="run only the observability-layer benchmarks")
    parser.add_argument("--scale", action="store_true",
                        help="run the native-scale battery (paper_bench + "
                             "full_1m presets; opt-in, not part of the "
                             "all-on default)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="run the pre-fork worker-pool benchmark with N "
                             "read workers (opt-in, not part of the all-on "
                             "default; needs os.fork)")
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "benchmarks" / "artifacts",
                        help="artifact output directory")
    parser.add_argument("--days", type=int, default=30,
                        help="days in the speedup comparison archive")
    args = parser.parse_args()
    run_all = not (args.suite or args.speedup or args.scenarios or args.service
                   or args.interning or args.replication or args.obs
                   or args.scale or args.workers)
    if args.scale:
        run_scale(args.out)
    if args.workers:
        run_workers(args.out, args.days, args.workers)
    if args.scenarios or run_all:
        run_scenarios(args.out)
    if args.speedup or run_all:
        run_speedup(args.out, args.days)
    if args.interning or run_all:
        run_interning(args.out, args.days)
    if args.service or run_all:
        run_service(args.out, args.days)
    if args.replication or run_all:
        run_replication(args.out, args.days)
    if args.obs or run_all:
        run_obs(args.out, args.days)
    if args.suite or run_all:
        run_suite(args.out)


if __name__ == "__main__":
    main()
