"""Figure 1a: intersection between the Top-1M lists over time.

Reproduces the daily pairwise and three-way intersections (normalised to
base domains) over the JOINT period, including the drop in the
Alexa/Majestic intersection after Alexa's structural change.
"""

import pytest

from bench_utils import emit
from repro.core.intersection import intersection_over_time


@pytest.mark.bench
def test_fig1a_intersection_over_time(benchmark, bench_run, bench_config):
    series = benchmark.pedantic(
        lambda: intersection_over_time(bench_run.archives), rounds=1, iterations=1)

    dates = sorted(series)
    lines = [f"{'date':<12} {'alexa∩majestic':>15} {'alexa∩umbrella':>15} "
             f"{'majestic∩umbrella':>18} {'all three':>10}"]
    for date in dates:
        row = series[date]
        lines.append(f"{date.isoformat():<12} {row[('alexa', 'majestic')]:>15} "
                     f"{row[('alexa', 'umbrella')]:>15} "
                     f"{row[('majestic', 'umbrella')]:>18} "
                     f"{row[('alexa', 'majestic', 'umbrella')]:>10}")
    emit("Figure 1a: Top-1M intersections over time", lines)

    first = series[dates[0]]
    last = series[dates[-1]]
    list_size = bench_config.list_size
    # Paper shape: intersections are well below the list size; the two
    # web-based lists agree most; the three-way intersection is smallest;
    # and the Alexa/Majestic intersection drops after Alexa's change.
    for row in (first, last):
        assert row[("alexa", "majestic")] < 0.75 * list_size
        assert row[("alexa", "majestic")] > row[("alexa", "umbrella")]
        assert row[("alexa", "majestic")] > row[("majestic", "umbrella")]
        assert row[("alexa", "majestic", "umbrella")] <= row[("alexa", "umbrella")]
    change_day = bench_config.alexa_change_day
    before = series[dates[change_day - 1]][("alexa", "majestic")]
    after = series[dates[-1]][("alexa", "majestic")]
    assert after < before

    benchmark.extra_info["alexa_majestic_before_change"] = before
    benchmark.extra_info["alexa_majestic_after_change"] = after
